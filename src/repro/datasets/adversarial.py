"""Adversarial traffic generators for open-set / lifecycle testing.

The paper's enforcement scenario has to hold up against traffic the
classifier was *not* trained on: transmitters that were never enrolled, and
devices replaying or imitating an enrolled transmitter's beamforming
feedback ("spoofing" the source address is trivial; spoofing the RF-chain
fingerprint carried by ``V~`` is what DeepCSI makes hard).  This module
generates both populations synthetically:

* every module gets a complex *fingerprint centre* drawn from a seeded RNG
  keyed by the module id -- the stand-in for the hardware-impairment
  signature the CNN learns;
* **enrolled** traffic is centre + small circular noise (the training-time
  condition);
* **unseen-transmitter** traffic uses fresh module ids, i.e. fingerprint
  centres the classifier has never seen;
* **spoofed** traffic starts from an *enrolled* centre but passes through
  the impostor's own RF chain: a random per-subcarrier phase rotation plus
  extra noise.  It claims an enrolled identity (``module_id`` is the spoofed
  one) while its fingerprint is measurably off -- the hard case for a pure
  closed-set classifier, which by construction must answer *some* enrolled
  identity.

Everything is deterministic in its seeds, fast (no PHY simulation), and
geometry-compatible with the tiny test classifiers as well as the paper's
80 MHz shapes.  The scenario bundle feeds ``benchmarks/bench_open_set.py``
and the service lifecycle/chaos tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.datasets.containers import FeedbackSample


class AdversarialError(ValueError):
    """Raised for invalid adversarial-scenario configurations."""


#: Default ``(K, M, N_SS)`` geometry of the generated ``V~`` matrices --
#: small enough to train a tiny classifier on in seconds.
DEFAULT_SHAPE = (12, 2, 1)


def _fingerprint_centre(
    module_id: int, shape: Tuple[int, int, int], centres_seed: int
) -> np.ndarray:
    """The module's complex fingerprint centre (a pure function of the id)."""
    rng = np.random.default_rng(centres_seed + module_id)
    return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)


def synthetic_feedback_samples(
    module_ids: Sequence[int],
    num_per_module: int = 25,
    shape: Tuple[int, int, int] = DEFAULT_SHAPE,
    noise_scale: float = 0.15,
    seed: int = 0,
    centres_seed: int = 42,
) -> List[FeedbackSample]:
    """Feedback samples clustered around per-module fingerprint centres.

    The centres depend only on ``centres_seed`` and the module id, so sample
    sets drawn with different ``seed`` values (train / test / later capture)
    share the same class structure -- exactly like repeated captures of the
    same hardware.
    """
    if not module_ids:
        raise AdversarialError("module_ids must not be empty")
    if num_per_module < 1:
        raise AdversarialError("num_per_module must be >= 1")
    rng = np.random.default_rng(seed)
    samples: List[FeedbackSample] = []
    for module_id in module_ids:
        centre = _fingerprint_centre(module_id, shape, centres_seed)
        for _ in range(num_per_module):
            noise = noise_scale * (
                rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
            )
            samples.append(
                FeedbackSample(
                    v_tilde=centre + noise,
                    module_id=module_id,
                    beamformee_id=1,
                )
            )
    rng.shuffle(samples)
    return samples


def spoofed_feedback_samples(
    claimed_module_ids: Sequence[int],
    num_per_module: int = 25,
    shape: Tuple[int, int, int] = DEFAULT_SHAPE,
    noise_scale: float = 0.3,
    phase_jitter: float = 0.8,
    seed: int = 1,
    centres_seed: int = 42,
) -> List[FeedbackSample]:
    """Impostor feedback imitating enrolled transmitters.

    Each sample starts from the *claimed* module's fingerprint centre (the
    impostor replays plausible feedback content) but is distorted by the
    impostor's own RF chain: an independent per-subcarrier phase rotation of
    standard deviation ``phase_jitter`` radians plus circular noise twice as
    strong as the enrolled condition.  ``module_id`` carries the claimed
    (spoofed) identity -- the ground truth is that none of these frames came
    from it, so an open-set authenticator must reject them while a
    closed-set classifier will happily confirm the claim.
    """
    if not claimed_module_ids:
        raise AdversarialError("claimed_module_ids must not be empty")
    if num_per_module < 1:
        raise AdversarialError("num_per_module must be >= 1")
    if phase_jitter < 0.0:
        raise AdversarialError("phase_jitter must be >= 0")
    rng = np.random.default_rng(seed)
    samples: List[FeedbackSample] = []
    for module_id in claimed_module_ids:
        centre = _fingerprint_centre(module_id, shape, centres_seed)
        for _ in range(num_per_module):
            rotation = np.exp(
                1j * phase_jitter * rng.standard_normal((shape[0], 1, 1))
            )
            noise = noise_scale * (
                rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
            )
            samples.append(
                FeedbackSample(
                    v_tilde=centre * rotation + noise,
                    module_id=module_id,
                    beamformee_id=2,
                )
            )
    rng.shuffle(samples)
    return samples


@dataclass(frozen=True)
class ImpostorScenario:
    """One reproducible open-set evaluation scenario.

    Attributes
    ----------
    enrolled_train / enrolled_test:
        Disjoint draws of the enrolled transmitters (train the classifier
        on the first, measure FRR/known-accuracy on the second).
    unseen:
        Traffic of transmitters that were never enrolled (fresh fingerprint
        centres); labelled with their own -- out-of-range -- module ids.
    spoofed:
        Impostor traffic claiming enrolled identities (see
        :func:`spoofed_feedback_samples`).
    enrolled_ids / unseen_ids:
        The module id populations behind the two sample sets.
    """

    enrolled_train: List[FeedbackSample]
    enrolled_test: List[FeedbackSample]
    unseen: List[FeedbackSample]
    spoofed: List[FeedbackSample]
    enrolled_ids: Tuple[int, ...]
    unseen_ids: Tuple[int, ...]

    @property
    def impostors(self) -> List[FeedbackSample]:
        """All not-enrolled traffic (unseen transmitters + spoofers)."""
        return list(self.unseen) + list(self.spoofed)


def impostor_scenario(
    num_enrolled: int = 3,
    num_unseen: int = 2,
    num_per_module: int = 25,
    shape: Tuple[int, int, int] = DEFAULT_SHAPE,
    noise_scale: float = 0.15,
    seed: int = 0,
    centres_seed: int = 42,
) -> ImpostorScenario:
    """Build the standard impostor scenario used by the bench and the tests.

    Enrolled transmitters get module ids ``0..num_enrolled-1``; unseen
    transmitters continue at ``100 + i`` so their fingerprint centres never
    collide with an enrolled one.  All four sample sets are deterministic in
    ``seed``/``centres_seed``.
    """
    if num_enrolled < 1:
        raise AdversarialError("num_enrolled must be >= 1")
    if num_unseen < 1:
        raise AdversarialError("num_unseen must be >= 1")
    enrolled_ids = tuple(range(num_enrolled))
    unseen_ids = tuple(100 + index for index in range(num_unseen))
    common = dict(
        num_per_module=num_per_module,
        shape=shape,
        noise_scale=noise_scale,
        centres_seed=centres_seed,
    )
    return ImpostorScenario(
        enrolled_train=synthetic_feedback_samples(
            enrolled_ids, seed=seed, **common
        ),
        enrolled_test=synthetic_feedback_samples(
            enrolled_ids, seed=seed + 1, **common
        ),
        unseen=synthetic_feedback_samples(unseen_ids, seed=seed + 2, **common),
        spoofed=spoofed_feedback_samples(
            enrolled_ids,
            num_per_module=num_per_module,
            shape=shape,
            noise_scale=2.0 * noise_scale,
            seed=seed + 3,
            centres_seed=centres_seed,
        ),
        enrolled_ids=enrolled_ids,
        unseen_ids=unseen_ids,
    )


def interleaved_traffic(
    scenario: ImpostorScenario,
    sources_per_population: int = 2,
    seed: int = 0,
) -> List[Tuple[str, FeedbackSample]]:
    """Shuffle the scenario into a ``(source, sample)`` service feed.

    Enrolled test traffic is spread over ``enrolled:<n>`` source addresses,
    impostor traffic (unseen + spoofed) over ``impostor:<n>`` ones, and the
    whole stream is deterministically shuffled -- the always-on condition
    where enrolled and adversarial traffic arrive interleaved and the
    service must keep their per-source verdicts apart.
    """
    if sources_per_population < 1:
        raise AdversarialError("sources_per_population must be >= 1")
    feed: List[Tuple[str, FeedbackSample]] = []
    for index, sample in enumerate(scenario.enrolled_test):
        feed.append((f"enrolled:{index % sources_per_population}", sample))
    for index, sample in enumerate(scenario.impostors):
        feed.append((f"impostor:{index % sources_per_population}", sample))
    np.random.default_rng(seed).shuffle(feed)
    return feed


def traffic_labels(
    feed: Iterable[Tuple[str, FeedbackSample]],
) -> Dict[str, bool]:
    """Per-source ground truth of a feed: ``True`` = genuinely enrolled."""
    labels: Dict[str, bool] = {}
    for source, _ in feed:
        labels[source] = source.startswith("enrolled:")
    return labels


__all__ = [
    "AdversarialError",
    "DEFAULT_SHAPE",
    "ImpostorScenario",
    "impostor_scenario",
    "interleaved_traffic",
    "spoofed_feedback_samples",
    "synthetic_feedback_samples",
    "traffic_labels",
]
