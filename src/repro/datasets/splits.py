"""Train/test splits of Tables I and II (sets S1..S6).

The paper's tables are shaded figures; the concrete position/group
assignments used here follow the constraints given in the text and are
documented in ``DESIGN.md``:

* **S1** -- train and test on all nine beamformee positions; traces present
  in both sets are split in time (first 80 % for training).
* **S2** -- train on the interleaved positions {1, 3, 5, 7, 9}, test on
  {2, 4, 6, 8} (the "balanced" configuration of the paper).
* **S3** -- train on the contiguous block {1..5}, test on {6..9} (the
  configuration with the largest train/test position difference).
* **S4** -- train on the ``mob1`` mobility traces, test on ``mob2``.
* **S5** -- train on the static groups ``fix1`` + ``fix2``, test on the
  mobility groups.
* **S6** -- train on the mobility groups, test on the static groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datasets.containers import FeedbackDataset, FeedbackSample

#: Fraction of a shared trace used for training when a position/group
#: appears in both the training and the testing set (paper: 80 %).
TRAIN_FRACTION = 0.8


class SplitError(ValueError):
    """Raised for invalid split configurations."""


@dataclass(frozen=True)
class D1Split:
    """A train/test split of the static dataset D1 (Table I)."""

    name: str
    train_positions: Tuple[int, ...]
    test_positions: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.train_positions or not self.test_positions:
            raise SplitError("both position sets must be non-empty")


@dataclass(frozen=True)
class D2Split:
    """A train/test split of the dynamic dataset D2 (Table II)."""

    name: str
    train_groups: Tuple[str, ...]
    test_groups: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.train_groups or not self.test_groups:
            raise SplitError("both group sets must be non-empty")


#: The three D1 splits of Table I.
D1_SPLITS: Dict[str, D1Split] = {
    "S1": D1Split("S1", tuple(range(1, 10)), tuple(range(1, 10))),
    "S2": D1Split("S2", (1, 3, 5, 7, 9), (2, 4, 6, 8)),
    "S3": D1Split("S3", (1, 2, 3, 4, 5), (6, 7, 8, 9)),
}

#: The three D2 splits of Table II.
D2_SPLITS: Dict[str, D2Split] = {
    "S4": D2Split("S4", ("mob1",), ("mob2",)),
    "S5": D2Split("S5", ("fix1", "fix2"), ("mob1", "mob2")),
    "S6": D2Split("S6", ("mob1", "mob2"), ("fix1", "fix2")),
}


def _filter_beamformee(
    samples: List[FeedbackSample], beamformee_id: Optional[int]
) -> List[FeedbackSample]:
    if beamformee_id is None:
        return samples
    return [s for s in samples if s.beamformee_id == beamformee_id]


def d1_split(
    dataset: FeedbackDataset,
    split: D1Split,
    beamformee_id: Optional[int] = None,
    num_train_positions: Optional[int] = None,
    train_fraction: float = TRAIN_FRACTION,
) -> Tuple[List[FeedbackSample], List[FeedbackSample]]:
    """Apply a Table-I split to dataset D1.

    Parameters
    ----------
    dataset:
        The D1 dataset.
    split:
        One of :data:`D1_SPLITS` (or a custom :class:`D1Split`).
    beamformee_id:
        Restrict both sets to the feedback of one beamformee (the paper's
        default protocol trains one model per beamformee).
    num_train_positions:
        Use only the first ``num_train_positions`` of ``split.train_positions``
        for training (the Fig. 10 sweep).
    train_fraction:
        Time fraction used for training when a position appears in both sets.

    Returns
    -------
    (train_samples, test_samples)
    """
    train_positions = list(split.train_positions)
    if num_train_positions is not None:
        if not 1 <= num_train_positions <= len(train_positions):
            raise SplitError(
                f"num_train_positions must be in 1..{len(train_positions)}"
            )
        train_positions = train_positions[:num_train_positions]
    test_positions = list(split.test_positions)

    train_samples: List[FeedbackSample] = []
    test_samples: List[FeedbackSample] = []
    for trace in dataset:
        in_train = trace.position_id in train_positions
        in_test = trace.position_id in test_positions
        if in_train and in_test:
            train_part, test_part = trace.time_split(train_fraction)
            train_samples.extend(train_part.samples)
            test_samples.extend(test_part.samples)
        elif in_train:
            train_samples.extend(trace.samples)
        elif in_test:
            test_samples.extend(trace.samples)
    train_samples = _filter_beamformee(train_samples, beamformee_id)
    test_samples = _filter_beamformee(test_samples, beamformee_id)
    if not train_samples or not test_samples:
        raise SplitError(
            f"split {split.name!r} produced an empty train or test set; "
            "check the dataset contents"
        )
    return train_samples, test_samples


def d1_cross_beamformee_split(
    dataset: FeedbackDataset,
    split: D1Split,
    train_beamformee_id: int,
    test_beamformee_id: int,
    train_fraction: float = TRAIN_FRACTION,
) -> Tuple[List[FeedbackSample], List[FeedbackSample]]:
    """Train on the feedback of one beamformee, test on the other (Fig. 11)."""
    if train_beamformee_id == test_beamformee_id:
        raise SplitError("train and test beamformees must differ")
    train_samples, _ = d1_split(
        dataset, split, beamformee_id=train_beamformee_id, train_fraction=train_fraction
    )
    _, test_samples = d1_split(
        dataset, split, beamformee_id=test_beamformee_id, train_fraction=train_fraction
    )
    return train_samples, test_samples


def d2_split(
    dataset: FeedbackDataset,
    split: D2Split,
    beamformee_id: Optional[int] = None,
    train_fraction: float = TRAIN_FRACTION,
) -> Tuple[List[FeedbackSample], List[FeedbackSample]]:
    """Apply a Table-II split to dataset D2.

    Groups appearing in both sets are split in time (first part for
    training); otherwise whole groups go to one side.
    """
    train_groups = set(split.train_groups)
    test_groups = set(split.test_groups)

    train_samples: List[FeedbackSample] = []
    test_samples: List[FeedbackSample] = []
    for trace in dataset:
        in_train = trace.group in train_groups
        in_test = trace.group in test_groups
        if in_train and in_test:
            train_part, test_part = trace.time_split(train_fraction)
            train_samples.extend(train_part.samples)
            test_samples.extend(test_part.samples)
        elif in_train:
            train_samples.extend(trace.samples)
        elif in_test:
            test_samples.extend(trace.samples)
    train_samples = _filter_beamformee(train_samples, beamformee_id)
    test_samples = _filter_beamformee(test_samples, beamformee_id)
    if not train_samples or not test_samples:
        raise SplitError(
            f"split {split.name!r} produced an empty train or test set; "
            "check the dataset contents"
        )
    return train_samples, test_samples


def d2_subpath_split(
    dataset: FeedbackDataset,
    beamformee_id: Optional[int] = None,
    progress_threshold: float = 0.55,
) -> Tuple[List[FeedbackSample], List[FeedbackSample]]:
    """The Fig. 17b split: train and test on *different* mobility sub-paths.

    Training uses the first part (A-B-C-B) of the ``mob1`` traces, testing
    the second part (B-D-B) of the ``mob2`` traces.  ``progress_threshold``
    is the path-progress value separating the two sub-paths.
    """
    train_samples: List[FeedbackSample] = []
    test_samples: List[FeedbackSample] = []
    for trace in dataset:
        if trace.group == "mob1":
            before, _ = trace.progress_split(progress_threshold)
            train_samples.extend(before.samples)
        elif trace.group == "mob2":
            _, after = trace.progress_split(progress_threshold)
            test_samples.extend(after.samples)
    train_samples = _filter_beamformee(train_samples, beamformee_id)
    test_samples = _filter_beamformee(test_samples, beamformee_id)
    if not train_samples or not test_samples:
        raise SplitError("sub-path split produced an empty train or test set")
    return train_samples, test_samples
