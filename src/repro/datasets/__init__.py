"""Dataset substrate: synthetic counterparts of the paper's D1 and D2.

* :mod:`repro.datasets.containers` -- sample / trace / dataset containers and
  label handling.
* :mod:`repro.datasets.features` -- extraction of the CNN input tensor from
  the reconstructed ``V~`` matrices (I/Q stacking, antenna / stream /
  sub-band selection).
* :mod:`repro.datasets.generator` -- generation of the static dataset D1
  (nine beamformee position pairs) and the dynamic dataset D2 (fix1/fix2
  static groups and mob1/mob2 mobility groups).
* :mod:`repro.datasets.splits` -- the S1..S6 train/test splits of Tables I
  and II.
* :mod:`repro.datasets.adversarial` -- impostor / spoofed-feedback traffic
  generators for open-set evaluation and the service lifecycle tests.
"""

from repro.datasets.adversarial import (
    ImpostorScenario,
    impostor_scenario,
    interleaved_traffic,
    spoofed_feedback_samples,
    synthetic_feedback_samples,
)
from repro.datasets.containers import FeedbackSample, Trace, FeedbackDataset
from repro.datasets.features import FeatureConfig, FeatureExtractor
from repro.datasets.generator import (
    DatasetConfig,
    generate_dataset_d1,
    generate_dataset_d2,
    generate_position_trace,
    generate_mobility_trace,
)
from repro.datasets.io import save_dataset, load_dataset
from repro.datasets.splits import (
    D1Split,
    D2Split,
    d1_split,
    d2_split,
    D1_SPLITS,
    D2_SPLITS,
)

__all__ = [
    "ImpostorScenario",
    "impostor_scenario",
    "interleaved_traffic",
    "spoofed_feedback_samples",
    "synthetic_feedback_samples",
    "FeedbackSample",
    "Trace",
    "FeedbackDataset",
    "FeatureConfig",
    "FeatureExtractor",
    "DatasetConfig",
    "generate_dataset_d1",
    "generate_dataset_d2",
    "generate_position_trace",
    "generate_mobility_trace",
    "save_dataset",
    "load_dataset",
    "D1Split",
    "D2Split",
    "d1_split",
    "d2_split",
    "D1_SPLITS",
    "D2_SPLITS",
]
