"""Extraction of the CNN input tensor from reconstructed ``V~`` matrices.

Section III-C of the paper: the I/Q components of the beamforming feedback
are stacked into an ``Nrow x Ncol x Nch`` tensor where

* ``Ncol <= K`` is the number of selected OFDM sub-carriers (Fig. 12a varies
  this by extracting the nested 40/20 MHz channels),
* ``Nrow <= N_SS`` is the number of selected spatial streams (the paper's
  main results use stream 0 only; Fig. 15 uses stream 1),
* ``Nch < 2M`` counts the I/Q channels of the selected transmit antennas;
  the feedback row of the *last* antenna is real by construction, so it only
  contributes an I channel (hence ``2M - 1`` for all antennas).

This implementation uses the ``(channels, rows, columns)`` order expected by
the ``NCHW`` convolution layers of :mod:`repro.nn`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.annotations import hot_path
from repro.arena import ArenaPool
from repro.datasets.containers import FeedbackSample


class FeatureError(ValueError):
    """Raised for invalid feature-extraction configurations."""


@dataclass(frozen=True)
class FeatureConfig:
    """Selection of the portions of ``V~`` used as classifier input.

    Attributes
    ----------
    antenna_indices:
        Rows of ``V~`` (transmit antennas) to include; ``None`` means all.
    stream_indices:
        Columns of ``V~`` (spatial streams) to include; ``None`` means all.
        The paper's headline results use ``(0,)``.
    subcarrier_positions:
        Positions (into the ``K`` axis) of the sub-carriers to include;
        ``None`` means all.  Combine with
        :func:`repro.phy.ofdm.subband_indices` to emulate narrower channels
        or with a stride to reduce the input size.
    last_antenna_index:
        Index of the antenna whose feedback row is real by construction (the
        last row of ``V~``); its Q component is dropped.  ``None`` disables
        the optimisation and keeps I and Q for every antenna.
    """

    antenna_indices: Optional[Tuple[int, ...]] = None
    stream_indices: Optional[Tuple[int, ...]] = (0,)
    subcarrier_positions: Optional[Tuple[int, ...]] = None
    last_antenna_index: Optional[int] = None

    def resolve(
        self, num_subcarriers: int, num_antennas: int, num_streams: int
    ) -> "ResolvedFeatureConfig":
        """Materialise the selection for a concrete ``V~`` shape."""
        antennas = (
            tuple(range(num_antennas))
            if self.antenna_indices is None
            else tuple(self.antenna_indices)
        )
        streams = (
            tuple(range(num_streams))
            if self.stream_indices is None
            else tuple(self.stream_indices)
        )
        subcarriers = (
            tuple(range(num_subcarriers))
            if self.subcarrier_positions is None
            else tuple(self.subcarrier_positions)
        )
        if not antennas or not streams or not subcarriers:
            raise FeatureError("antenna, stream and sub-carrier selections cannot be empty")
        if max(antennas) >= num_antennas or min(antennas) < 0:
            raise FeatureError(f"antenna index out of range for M={num_antennas}")
        if max(streams) >= num_streams or min(streams) < 0:
            raise FeatureError(f"stream index out of range for N_SS={num_streams}")
        if max(subcarriers) >= num_subcarriers or min(subcarriers) < 0:
            raise FeatureError(f"sub-carrier position out of range for K={num_subcarriers}")
        last = (
            num_antennas - 1 if self.last_antenna_index is None else self.last_antenna_index
        )
        return ResolvedFeatureConfig(
            antennas=antennas,
            streams=streams,
            subcarriers=subcarriers,
            last_antenna=last,
        )


@dataclass(frozen=True)
class ResolvedFeatureConfig:
    """A :class:`FeatureConfig` bound to a concrete ``V~`` shape."""

    antennas: Tuple[int, ...]
    streams: Tuple[int, ...]
    subcarriers: Tuple[int, ...]
    last_antenna: int

    @property
    def num_channels(self) -> int:
        """Number of I/Q channels of the extracted tensor (``Nch``)."""
        channels = 0
        for antenna in self.antennas:
            channels += 1 if antenna == self.last_antenna else 2
        return channels

    @property
    def shape(self) -> Tuple[int, int, int]:
        """Shape ``(Nch, Nrow, Ncol)`` of the extracted tensor."""
        return (self.num_channels, len(self.streams), len(self.subcarriers))


class FeatureExtractor:
    """Turns feedback samples into CNN input tensors."""

    def __init__(self, config: Optional[FeatureConfig] = None) -> None:
        self.config = config if config is not None else FeatureConfig()

    def transform_matrix(self, v_tilde: np.ndarray) -> np.ndarray:
        """Extract the feature tensor from a single ``V~`` matrix.

        Parameters
        ----------
        v_tilde:
            Complex matrix of shape ``(K, M, N_SS)``.

        Returns
        -------
        numpy.ndarray
            Real tensor of shape ``(Nch, Nrow, Ncol)``.
        """
        v_tilde = np.asarray(v_tilde)
        if v_tilde.ndim != 3:
            raise FeatureError("v_tilde must have shape (K, M, N_SS)")
        return self.transform_matrices(v_tilde[np.newaxis])[0]

    @hot_path
    def transform_matrices(self, v_batch: np.ndarray) -> np.ndarray:
        """Extract feature tensors from a pre-stacked batch of ``V~`` matrices.

        This is the vectorised hot path used by the streaming inference
        engine: all selections broadcast over the batch axis, so no
        per-sample Python loop remains (the tiny loop over the selected
        antennas builds the channel layout, not the data).

        Parameters
        ----------
        v_batch:
            Complex array of shape ``(B, K, M, N_SS)``.

        Returns
        -------
        numpy.ndarray
            Real tensor of shape ``(B, Nch, Nrow, Ncol)``.
        """
        v_batch = np.asarray(v_batch)
        if v_batch.ndim != 4:
            raise FeatureError("v_batch must have shape (B, K, M, N_SS)")
        resolved = self.config.resolve(*v_batch.shape[1:])
        subcarriers = np.asarray(resolved.subcarriers)
        num_antennas = v_batch.shape[2]
        streams = np.asarray(resolved.streams)
        # One fused advanced-index copy over (subcarrier, antenna, stream),
        # instead of chained selections that materialise the intermediate
        # (B, Ksel, M, N_SS) batch; (B, Ncol, M, Nrow) -> (B, M, Nrow, Ncol).
        selected = v_batch[
            :,
            subcarriers[:, np.newaxis, np.newaxis],
            np.arange(num_antennas)[np.newaxis, :, np.newaxis],
            streams[np.newaxis, np.newaxis, :],
        ].transpose(0, 2, 3, 1)
        num_channels, num_rows, num_cols = resolved.shape
        features = np.empty(
            (v_batch.shape[0], num_channels, num_rows, num_cols), dtype=float
        )
        # Write each real/imaginary channel straight into the output tensor
        # (no per-channel stack + astype copies on the streaming hot path).
        channel = 0
        for antenna in resolved.antennas:
            block = selected[:, antenna]
            np.copyto(features[:, channel], block.real)
            channel += 1
            if antenna != resolved.last_antenna:
                np.copyto(features[:, channel], block.imag)
                channel += 1
        return features

    @hot_path
    def transform_accumulator(
        self,
        accumulator: np.ndarray,
        num_streams: int,
        *,
        arena: Optional[ArenaPool] = None,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Extract feature tensors straight from a Givens accumulator batch.

        The codeword-native preprocessing path
        (:func:`repro.feedback.givens.reconstruct_accumulator_quantized`)
        leaves ``V~`` as the first ``N_SS`` columns of its ``(B, K, M, M)``
        arena accumulator.  This method writes the real/imaginary channels
        of the selected (antenna, stream, sub-carrier) entries directly into
        the output tensor -- the full complex ``V~`` batch is never
        materialised.  Values are pure element copies, so the result is
        bit-identical to ``transform_matrices(accumulator[..., :N_SS])``.

        Parameters
        ----------
        accumulator:
            Complex array of shape ``(B, K, M, M)``; columns ``>= N_SS``
            are ignored.
        num_streams:
            Number of valid ``V~`` columns ``N_SS``.
        arena:
            Scratch pool for the per-channel sub-carrier gathers; a private
            throw-away pool is used when ``None``.  When ``out`` is omitted
            the output tensor itself also comes from the arena -- i.e. a
            *reused* buffer that the next call with the same arena
            overwrites; copy it out (or consume it immediately, as the
            engine does) if it must survive.
        out:
            Optional preallocated ``(B, Nch, Nrow, Ncol)`` output.  The
            dtype follows the accumulator: float32 for complex64 input,
            float64 otherwise.

        Returns
        -------
        numpy.ndarray
            Real tensor of shape ``(B, Nch, Nrow, Ncol)``.
        """
        accumulator = np.asarray(accumulator)
        if accumulator.ndim != 4:
            raise FeatureError("accumulator must have shape (B, K, M, M)")
        batch, num_sub, num_antennas = accumulator.shape[:3]
        resolved = self.config.resolve(num_sub, num_antennas, num_streams)
        subcarriers = np.asarray(resolved.subcarriers)
        num_channels, num_rows, num_cols = resolved.shape
        rdtype = np.float32 if accumulator.dtype == np.complex64 else np.float64
        if arena is None:
            arena = ArenaPool()
        if out is None:
            out = arena.get(
                ("features", "out"),
                (batch, num_channels, num_rows, num_cols),
                dtype=rdtype,
            )
        gathered = arena.get(
            ("features", "gather"), (batch, num_cols), dtype=accumulator.dtype
        )
        channel = 0
        for antenna in resolved.antennas:
            for row, stream in enumerate(resolved.streams):
                np.take(
                    accumulator[:, :, antenna, stream],
                    subcarriers,
                    axis=1,
                    out=gathered,
                )
                np.copyto(out[:, channel, row], gathered.real)
                if antenna != resolved.last_antenna:
                    np.copyto(out[:, channel + 1, row], gathered.imag)
            channel += 1 if antenna == resolved.last_antenna else 2
        return out

    def transform_samples(self, samples: Sequence[FeedbackSample]) -> Tuple[np.ndarray, np.ndarray]:
        """Extract features and labels from a list of samples.

        Returns
        -------
        (features, labels):
            ``features`` has shape ``(num_samples, Nch, Nrow, Ncol)`` and
            ``labels`` contains the module identifiers.
        """
        if not samples:
            raise FeatureError("cannot extract features from an empty sample list")
        features = self.transform_matrices(
            np.stack([sample.v_tilde for sample in samples], axis=0)
        )
        labels = np.array([sample.module_id for sample in samples], dtype=int)
        return features, labels

    def output_shape(self, v_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        """Feature tensor shape for a ``V~`` of shape ``(K, M, N_SS)``."""
        return self.config.resolve(*v_shape).shape


def strided_subcarriers(num_subcarriers: int, stride: int) -> Tuple[int, ...]:
    """Every ``stride``-th sub-carrier position (a cheap input reduction)."""
    if stride < 1:
        raise FeatureError("stride must be >= 1")
    return tuple(range(0, num_subcarriers, stride))


def normalize_features(
    features: np.ndarray, epsilon: float = 1e-8
) -> Tuple[np.ndarray, Tuple[np.ndarray, np.ndarray]]:
    """Standardise features per channel (zero mean, unit variance).

    Returns the normalised array and the ``(mean, std)`` statistics so the
    same transformation can be applied to the test set.
    """
    mean = features.mean(axis=(0, 2, 3), keepdims=True)
    std = features.std(axis=(0, 2, 3), keepdims=True) + epsilon
    return (features - mean) / std, (mean, std)


def apply_normalization(
    features: np.ndarray, statistics: Tuple[np.ndarray, np.ndarray]
) -> np.ndarray:
    """Apply previously computed normalisation statistics."""
    mean, std = statistics
    return (features - mean) / std
