"""Containers for captured beamforming-feedback data.

The paper organises its captures into *traces*: two minutes of feedback
angles collected for one (module, network configuration) pair, containing
the feedback of both beamformees (separable by source MAC address).  The
containers here mirror that structure:

* :class:`FeedbackSample` -- one reconstructed ``V~`` matrix with its labels.
* :class:`Trace` -- an ordered list of samples sharing the same module and
  acquisition conditions.
* :class:`FeedbackDataset` -- a collection of traces with filtering and
  array-export helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class FeedbackSample:
    """One captured compressed-beamforming feedback.

    Attributes
    ----------
    v_tilde:
        Reconstructed beamforming matrix ``V~`` of shape ``(K, M, N_SS)``.
    module_id:
        Identifier of the AP Wi-Fi module (the classification label).
    beamformee_id:
        Identifier of the station that produced the feedback.
    position_id:
        D1 beamformee position (1..9); ``0`` for D2 traces.
    group:
        D2 measurement group (``"fix1"``, ``"fix2"``, ``"mob1"``, ``"mob2"``)
        or ``"static"`` for D1.
    timestamp_s:
        Capture time within the trace.
    path_progress:
        For mobility traces, the fraction (0..1) of the A-B-C-D-B-A path the
        AP had covered when the feedback was captured; 0 for static traces.
    """

    v_tilde: np.ndarray
    module_id: int
    beamformee_id: int
    position_id: int = 0
    group: str = "static"
    timestamp_s: float = 0.0
    path_progress: float = 0.0

    @property
    def num_subcarriers(self) -> int:
        """Number of sub-carriers ``K`` of the feedback."""
        return self.v_tilde.shape[0]

    @property
    def num_tx_antennas(self) -> int:
        """Number of rows ``M`` of the feedback matrix."""
        return self.v_tilde.shape[1]

    @property
    def num_streams(self) -> int:
        """Number of columns ``N_SS`` of the feedback matrix."""
        return self.v_tilde.shape[2]


@dataclass
class Trace:
    """An ordered list of feedback samples from one acquisition.

    Attributes
    ----------
    samples:
        The captured samples, time ordered.
    module_id:
        AP module used during the acquisition.
    position_id:
        D1 beamformee position; ``0`` for D2.
    group:
        D2 measurement group; ``"static"`` for D1.
    trace_id:
        Unique identifier within the dataset.
    """

    samples: List[FeedbackSample] = field(default_factory=list)
    module_id: int = 0
    position_id: int = 0
    group: str = "static"
    trace_id: int = 0

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self) -> Iterator[FeedbackSample]:
        return iter(self.samples)

    def __getitem__(self, index: int) -> FeedbackSample:
        return self.samples[index]

    def add(self, sample: FeedbackSample) -> None:
        """Append a sample to the trace."""
        self.samples.append(sample)

    def filter_beamformee(self, beamformee_id: int) -> "Trace":
        """Sub-trace containing only the feedback of one beamformee."""
        kept = [s for s in self.samples if s.beamformee_id == beamformee_id]
        return Trace(
            samples=kept,
            module_id=self.module_id,
            position_id=self.position_id,
            group=self.group,
            trace_id=self.trace_id,
        )

    def time_split(self, train_fraction: float) -> Tuple["Trace", "Trace"]:
        """Split the trace in time: the first part for training, the rest for test.

        This mirrors the paper's S1 protocol where the first 80 % of every
        trace trains the model and the last 20 % tests it.
        """
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        # Split each beamformee's sub-stream separately so both parts keep
        # feedback from every station.
        train_samples: List[FeedbackSample] = []
        test_samples: List[FeedbackSample] = []
        beamformees = sorted({s.beamformee_id for s in self.samples})
        for beamformee in beamformees:
            subset = [s for s in self.samples if s.beamformee_id == beamformee]
            cut = int(round(len(subset) * train_fraction))
            cut = min(max(cut, 1), len(subset) - 1) if len(subset) > 1 else len(subset)
            train_samples.extend(subset[:cut])
            test_samples.extend(subset[cut:])
        make = lambda samples: Trace(  # noqa: E731 - small local helper
            samples=samples,
            module_id=self.module_id,
            position_id=self.position_id,
            group=self.group,
            trace_id=self.trace_id,
        )
        return make(train_samples), make(test_samples)

    def progress_split(self, threshold: float) -> Tuple["Trace", "Trace"]:
        """Split a mobility trace by path progress (before/after ``threshold``)."""
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        before = [s for s in self.samples if s.path_progress <= threshold]
        after = [s for s in self.samples if s.path_progress > threshold]
        make = lambda samples: Trace(  # noqa: E731
            samples=samples,
            module_id=self.module_id,
            position_id=self.position_id,
            group=self.group,
            trace_id=self.trace_id,
        )
        return make(before), make(after)


@dataclass
class FeedbackDataset:
    """A collection of traces (either D1 or D2)."""

    traces: List[Trace] = field(default_factory=list)
    name: str = "dataset"

    def __len__(self) -> int:
        return len(self.traces)

    def __iter__(self) -> Iterator[Trace]:
        return iter(self.traces)

    def add(self, trace: Trace) -> None:
        """Append a trace to the dataset."""
        self.traces.append(trace)

    @property
    def module_ids(self) -> List[int]:
        """Sorted list of module identifiers present in the dataset."""
        return sorted({t.module_id for t in self.traces})

    @property
    def position_ids(self) -> List[int]:
        """Sorted list of D1 position identifiers present in the dataset."""
        return sorted({t.position_id for t in self.traces})

    @property
    def groups(self) -> List[str]:
        """Sorted list of measurement groups present in the dataset."""
        return sorted({t.group for t in self.traces})

    @property
    def num_samples(self) -> int:
        """Total number of samples across every trace."""
        return sum(len(t) for t in self.traces)

    def filter(
        self,
        module_ids: Optional[Sequence[int]] = None,
        position_ids: Optional[Sequence[int]] = None,
        groups: Optional[Sequence[str]] = None,
        predicate: Optional[Callable[[Trace], bool]] = None,
    ) -> "FeedbackDataset":
        """Dataset containing only the traces matching the given criteria."""
        kept = []
        for trace in self.traces:
            if module_ids is not None and trace.module_id not in module_ids:
                continue
            if position_ids is not None and trace.position_id not in position_ids:
                continue
            if groups is not None and trace.group not in groups:
                continue
            if predicate is not None and not predicate(trace):
                continue
            kept.append(trace)
        return FeedbackDataset(traces=kept, name=self.name)

    def samples(
        self, beamformee_id: Optional[int] = None
    ) -> List[FeedbackSample]:
        """Flat list of samples, optionally restricted to one beamformee."""
        result: List[FeedbackSample] = []
        for trace in self.traces:
            for sample in trace:
                if beamformee_id is not None and sample.beamformee_id != beamformee_id:
                    continue
                result.append(sample)
        return result

    def summary(self) -> str:
        """Human-readable content summary."""
        lines = [
            f"dataset {self.name!r}: {len(self.traces)} traces, "
            f"{self.num_samples} samples",
            f"  modules:   {self.module_ids}",
            f"  positions: {self.position_ids}",
            f"  groups:    {self.groups}",
        ]
        return "\n".join(lines)


def merge_datasets(datasets: Iterable[FeedbackDataset], name: str = "merged") -> FeedbackDataset:
    """Concatenate several datasets into one."""
    merged = FeedbackDataset(name=name)
    for dataset in datasets:
        for trace in dataset:
            merged.add(trace)
    return merged
