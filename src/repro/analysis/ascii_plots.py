"""Text-mode plotting helpers.

The paper's figures are regenerated as numeric tables by the benchmarks; the
helpers here additionally render them as monospace charts so the examples can
show the *shape* of a result (accuracy bars, quantisation-error histograms,
|V~| heat maps) directly in a terminal, without any plotting dependency.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

#: Characters used for vertical resolution inside a single text row.
_BLOCKS = " ▁▂▃▄▅▆▇█"
#: Characters used for heat-map intensities (light to dark).
_SHADES = " .:-=+*#%@"


class PlotError(ValueError):
    """Raised for invalid plotting inputs."""


def _check_values(values: Sequence[float]) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise PlotError("values must be a non-empty one-dimensional sequence")
    if not np.all(np.isfinite(array)):
        raise PlotError("values must be finite")
    return array


def sparkline(values: Sequence[float]) -> str:
    """Single-line sparkline of a numeric series."""
    array = _check_values(values)
    low, high = float(array.min()), float(array.max())
    span = high - low
    if span == 0:
        return _BLOCKS[4] * len(array)
    indices = np.round((array - low) / span * (len(_BLOCKS) - 1)).astype(int)
    return "".join(_BLOCKS[i] for i in indices)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
    max_value: Optional[float] = None,
) -> str:
    """Horizontal bar chart, one row per (label, value) pair."""
    array = _check_values(values)
    if len(labels) != len(array):
        raise PlotError("labels and values must have the same length")
    if width < 1:
        raise PlotError("width must be >= 1")
    if np.any(array < 0):
        raise PlotError("bar_chart expects non-negative values")
    top = float(max_value) if max_value is not None else float(array.max())
    top = top if top > 0 else 1.0
    label_width = max(len(str(label)) for label in labels)
    lines = []
    for label, value in zip(labels, array):
        filled = int(round(min(value / top, 1.0) * width))
        bar = "█" * filled + "·" * (width - filled)
        lines.append(f"{str(label):<{label_width}s} |{bar}| {value:.2f}{unit}")
    return "\n".join(lines)


def line_plot(
    values: Sequence[float],
    height: int = 10,
    width: Optional[int] = None,
    y_label: str = "",
) -> str:
    """Character-grid line plot of a single series."""
    array = _check_values(values)
    if height < 2:
        raise PlotError("height must be >= 2")
    columns = int(width) if width is not None else len(array)
    if columns < 2:
        raise PlotError("width must be >= 2")
    # Resample the series to the requested number of columns.
    positions = np.linspace(0, len(array) - 1, columns)
    resampled = np.interp(positions, np.arange(len(array)), array)
    low, high = float(resampled.min()), float(resampled.max())
    span = high - low if high > low else 1.0
    rows = np.full((height, columns), " ", dtype="<U1")
    scaled = (resampled - low) / span * (height - 1)
    for column, value in enumerate(scaled):
        row = height - 1 - int(round(value))
        rows[row, column] = "*"
    lines = ["".join(row) for row in rows]
    header = f"{y_label} max={high:.3g}" if y_label else f"max={high:.3g}"
    footer = f"{'':<{len(y_label)}} min={low:.3g}" if y_label else f"min={low:.3g}"
    return "\n".join([header] + lines + [footer])


def histogram(
    values: Sequence[float],
    num_bins: int = 12,
    width: int = 40,
    value_format: str = "{:.3g}",
) -> str:
    """Text histogram of a numeric sample."""
    array = _check_values(values)
    if num_bins < 1:
        raise PlotError("num_bins must be >= 1")
    counts, edges = np.histogram(array, bins=num_bins)
    top = counts.max() if counts.max() > 0 else 1
    lines = []
    for index in range(num_bins):
        low = value_format.format(edges[index])
        high = value_format.format(edges[index + 1])
        filled = int(round(counts[index] / top * width))
        lines.append(f"[{low:>9s}, {high:>9s}) |{'█' * filled:<{width}s}| {counts[index]}")
    return "\n".join(lines)


def heatmap(
    matrix: np.ndarray,
    row_labels: Optional[Sequence[str]] = None,
    col_labels: Optional[Sequence[str]] = None,
    normalise: bool = True,
) -> str:
    """Shaded-character heat map of a 2-D matrix (larger value = darker)."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.size == 0:
        raise PlotError("matrix must be a non-empty 2-D array")
    if not np.all(np.isfinite(matrix)):
        raise PlotError("matrix entries must be finite")
    display = matrix.copy()
    if normalise:
        low, high = display.min(), display.max()
        span = high - low if high > low else 1.0
        display = (display - low) / span
    else:
        display = np.clip(display, 0.0, 1.0)
    num_rows, num_cols = display.shape
    rows = (
        [str(label) for label in row_labels]
        if row_labels is not None
        else [str(i) for i in range(num_rows)]
    )
    if len(rows) != num_rows:
        raise PlotError("row_labels must match the number of rows")
    label_width = max(len(r) for r in rows)
    lines = []
    if col_labels is not None:
        if len(col_labels) != num_cols:
            raise PlotError("col_labels must match the number of columns")
        header = " " * (label_width + 1) + "".join(
            str(label)[:1] for label in col_labels
        )
        lines.append(header)
    for row_index in range(num_rows):
        cells = "".join(
            _SHADES[int(round(display[row_index, col] * (len(_SHADES) - 1)))]
            for col in range(num_cols)
        )
        lines.append(f"{rows[row_index]:>{label_width}s} {cells}")
    return "\n".join(lines)


def accuracy_comparison(
    rows: Sequence[Tuple[str, float, Optional[float]]], width: int = 30
) -> str:
    """Bar chart comparing measured accuracies against paper values.

    Each row is ``(label, measured_accuracy, paper_accuracy_or_None)`` with
    accuracies in ``[0, 1]``.
    """
    if not rows:
        raise PlotError("rows must be non-empty")
    label_width = max(len(label) for label, _, _ in rows)
    lines = []
    for label, measured, paper in rows:
        if not 0.0 <= measured <= 1.0:
            raise PlotError("measured accuracy must be in [0, 1]")
        filled = int(round(measured * width))
        bar = "█" * filled + "·" * (width - filled)
        paper_text = f"  paper {100.0 * paper:5.1f}%" if paper is not None else ""
        lines.append(
            f"{label:<{label_width}s} |{bar}| {100.0 * measured:5.1f}%{paper_text}"
        )
    return "\n".join(lines)
