"""Runtime validation of the ``# guarded-by:`` lock-discipline declarations.

The static checker (:mod:`repro.analysis.lint.checkers.locks`) proves lock
discipline over the AST; this module validates the *same declarations* as
ground truth against a live instance under the concurrency stress tests.  It
parses the instance's class source with the checker's own
:func:`~repro.analysis.lint.checkers.locks.extract_guarded_declarations`, so
static and dynamic enforcement can never drift apart, then:

* swaps every referenced lock for a :class:`RecordingLock` that tracks which
  threads currently hold it, and
* rebinds the instance to a dynamic subclass whose data descriptors
  intercept every read/write of a guarded attribute and record a
  :class:`GuardedAccess` violation when the declared lock is not held by the
  accessing thread.

Usage (see ``tests/test_runtime_guard.py``)::

    engine = InferenceEngine(classifier, geometry, batch_size=8)
    with validate_guarded(engine) as monitor:
        run_concurrent_submits(engine)
    monitor.assert_clean()

The monitor *records* violations rather than raising inside worker threads
(an exception there would be swallowed by the thread and the test would pass
vacuously); ``strict=True`` raises at the access site instead, for
single-threaded debugging.
"""

from __future__ import annotations

import ast
import sys
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis.lint.checkers.locks import extract_guarded_declarations
from repro.analysis.lint.framework import SourceFile

_SHADOW_PREFIX = "__guard_value_"


class GuardError(AssertionError):
    """Raised by :meth:`GuardMonitor.assert_clean` (or in strict mode)."""


@dataclass(frozen=True)
class GuardedAccess:
    """One access of a guarded attribute without its declared lock held."""

    attribute: str
    lock: str
    operation: str  # "read" | "write"
    thread: str
    caller: str  # "file:line" of the access site

    def format(self) -> str:
        return (
            f"{self.caller}: {self.operation} of '{self.attribute}' "
            f"(guarded-by: {self.lock}) without the lock held "
            f"[thread {self.thread}]"
        )


class RecordingLock:
    """A ``threading.Lock`` stand-in that knows who currently holds it."""

    def __init__(self) -> None:
        self._inner = threading.Lock()
        self._holders: Set[int] = set()
        self.acquisitions = 0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._holders.add(threading.get_ident())
            self.acquisitions += 1
        return acquired

    def release(self) -> None:
        self._holders.discard(threading.get_ident())
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def held_by_current_thread(self) -> bool:
        return threading.get_ident() in self._holders

    def __enter__(self) -> "RecordingLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.release()
        return False


def guarded_declarations_of(cls: type) -> Dict[str, str]:
    """``attribute -> lock attribute`` merged over the MRO of ``cls``.

    Reuses the static checker's extraction, so the runtime validator
    enforces *exactly* the declarations the linter enforces.
    """
    merged: Dict[str, str] = {}
    for base in reversed(cls.__mro__):
        module = sys.modules.get(base.__module__)
        path = getattr(module, "__file__", None)
        if path is None:
            continue
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = SourceFile(path, handle.read())
        except (OSError, SyntaxError):
            continue
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef) and node.name == base.__name__:
                for attr, (lock, _line) in extract_guarded_declarations(
                    source, node
                ).items():
                    merged[attr] = lock
    return merged


@dataclass
class GuardMonitor:
    """Collected outcome of one instrumented run."""

    declarations: Dict[str, str]
    violations: List[GuardedAccess] = field(default_factory=list)
    reads: int = 0
    writes: int = 0
    locks: Dict[str, RecordingLock] = field(default_factory=dict)
    strict: bool = False
    _instance: Optional[object] = None
    _original_class: Optional[type] = None

    @property
    def guarded_accesses(self) -> int:
        return self.reads + self.writes

    def assert_clean(self) -> None:
        """Raise :class:`GuardError` if any unguarded access was recorded.

        Also fails when *no* guarded access happened at all: a stress test
        that never touched the guarded state validates nothing.
        """
        if self.violations:
            listing = "\n  ".join(entry.format() for entry in self.violations)
            raise GuardError(
                f"{len(self.violations)} unguarded accesses of declared "
                f"guarded-by attributes:\n  {listing}"
            )
        if not self.guarded_accesses:
            raise GuardError(
                "the instrumented run never touched a guarded attribute; "
                "the validation is vacuous"
            )

    def restore(self) -> None:
        """Rebind the instance to its original class (locks stay swapped)."""
        if self._instance is not None and self._original_class is not None:
            for attr in self.declarations:
                shadow = _SHADOW_PREFIX + attr
                if shadow in self._instance.__dict__:
                    self._instance.__dict__[attr] = self._instance.__dict__.pop(
                        shadow
                    )
            self._instance.__class__ = self._original_class
            self._instance = None

    def __enter__(self) -> "GuardMonitor":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.restore()
        return False


def _guard_property(attribute: str, lock_attr: str, monitor: GuardMonitor):
    shadow = _SHADOW_PREFIX + attribute

    def _check(instance: object, operation: str) -> None:
        lock = instance.__dict__.get(lock_attr)
        if isinstance(lock, RecordingLock) and lock.held_by_current_thread():
            return
        frame = sys._getframe(2)
        access = GuardedAccess(
            attribute=attribute,
            lock=lock_attr,
            operation=operation,
            thread=threading.current_thread().name,
            caller=f"{frame.f_code.co_filename}:{frame.f_lineno}",
        )
        monitor.violations.append(access)
        if monitor.strict:
            raise GuardError(access.format())

    def fget(instance: object):
        monitor.reads += 1
        _check(instance, "read")
        return instance.__dict__[shadow]

    def fset(instance: object, value: object) -> None:
        monitor.writes += 1
        _check(instance, "write")
        instance.__dict__[shadow] = value

    return property(fget, fset)


def validate_guarded(instance: object, strict: bool = False) -> GuardMonitor:
    """Instrument ``instance`` so every guarded access is lock-checked.

    Swaps each declared lock for a :class:`RecordingLock`, moves the guarded
    values into shadow slots and rebinds the instance to a one-off subclass
    whose properties validate the holder thread on every access.  Returns a
    :class:`GuardMonitor` (usable as a context manager; on exit the original
    class is restored).
    """
    cls = type(instance)
    declarations = guarded_declarations_of(cls)
    if not declarations:
        raise GuardError(
            f"{cls.__name__} declares no '# guarded-by:' attributes; "
            "nothing to validate"
        )
    monitor = GuardMonitor(declarations=declarations, strict=strict)
    monitor._instance = instance
    monitor._original_class = cls
    for lock_attr in set(declarations.values()):
        if not hasattr(instance, lock_attr):
            raise GuardError(
                f"declared lock attribute '{lock_attr}' does not exist on "
                f"{cls.__name__}"
            )
        recording = RecordingLock()
        instance.__dict__[lock_attr] = recording
        monitor.locks[lock_attr] = recording
    namespace: Dict[str, object] = {}
    for attribute, lock_attr in declarations.items():
        if attribute in instance.__dict__:
            instance.__dict__[_SHADOW_PREFIX + attribute] = instance.__dict__.pop(
                attribute
            )
        namespace[attribute] = _guard_property(attribute, lock_attr, monitor)
    instance.__class__ = type(f"Guarded{cls.__name__}", (cls,), namespace)
    return monitor


__all__ = [
    "GuardError",
    "GuardMonitor",
    "GuardedAccess",
    "RecordingLock",
    "guarded_declarations_of",
    "validate_guarded",
]
