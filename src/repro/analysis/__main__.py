"""``python -m repro.analysis`` runs the repro-lint static-analysis suite."""

import sys

from repro.analysis.lint.cli import main

if __name__ == "__main__":
    sys.exit(main())
