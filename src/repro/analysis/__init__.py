"""Analysis and reporting utilities.

No plotting backend is available in the offline environment, so every figure
of the paper is rendered as monospace text:

* :mod:`repro.analysis.ascii_plots` -- bar charts, line plots, histograms and
  heat maps rendered with unicode block characters (used by the examples and
  the benchmark reports).
* :mod:`repro.analysis.separability` -- cheap feature-space diagnostics (a
  linear softmax probe and class-centroid statistics) used to study how much
  of the fingerprint survives a given channel condition without paying for a
  full CNN training.
"""

from repro.analysis.ascii_plots import (
    accuracy_comparison,
    bar_chart,
    heatmap,
    histogram,
    line_plot,
    sparkline,
)
from repro.analysis.separability import (
    LinearProbe,
    SeparabilityReport,
    centroid_separability,
    linear_probe_accuracy,
)

__all__ = [
    "accuracy_comparison",
    "bar_chart",
    "heatmap",
    "histogram",
    "line_plot",
    "sparkline",
    "LinearProbe",
    "SeparabilityReport",
    "centroid_separability",
    "linear_probe_accuracy",
]
