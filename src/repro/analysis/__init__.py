"""Analysis and reporting utilities.

No plotting backend is available in the offline environment, so every figure
of the paper is rendered as monospace text:

* :mod:`repro.analysis.ascii_plots` -- bar charts, line plots, histograms and
  heat maps rendered with unicode block characters (used by the examples and
  the benchmark reports).
* :mod:`repro.analysis.separability` -- cheap feature-space diagnostics (a
  linear softmax probe and class-centroid statistics) used to study how much
  of the fingerprint survives a given channel condition without paying for a
  full CNN training.
* :mod:`repro.analysis.lint` -- the repro-lint static-analysis suite
  (``repro-csi lint`` / ``python -m repro.analysis``) enforcing the
  project's lock-discipline, hot-path-allocation, dtype-contract and
  process-safety invariants, declared via :mod:`repro.analysis.annotations`.
* :mod:`repro.analysis.runtime` -- a runtime validator replaying the
  ``# guarded-by:`` declarations dynamically under the concurrency tests.
"""

# Re-exports are lazy (PEP 562): the low-level modules under this package
# (:mod:`repro.analysis.annotations`, :mod:`repro.analysis.lint`) are imported
# by hot-path modules such as :mod:`repro.datasets.features`, which
# :mod:`repro.analysis.separability` itself depends on.  Eager imports here
# would close that cycle.
_ASCII_PLOT_EXPORTS = (
    "accuracy_comparison",
    "bar_chart",
    "heatmap",
    "histogram",
    "line_plot",
    "sparkline",
)
_SEPARABILITY_EXPORTS = (
    "LinearProbe",
    "SeparabilityReport",
    "centroid_separability",
    "linear_probe_accuracy",
)


def __getattr__(name):
    if name in _ASCII_PLOT_EXPORTS:
        from repro.analysis import ascii_plots

        return getattr(ascii_plots, name)
    if name in _SEPARABILITY_EXPORTS:
        from repro.analysis import separability

        return getattr(separability, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(__all__))


__all__ = [
    "accuracy_comparison",
    "bar_chart",
    "heatmap",
    "histogram",
    "line_plot",
    "sparkline",
    "LinearProbe",
    "SeparabilityReport",
    "centroid_separability",
    "linear_probe_accuracy",
]
