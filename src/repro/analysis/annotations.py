"""Source annotations consumed by the static-analysis suite.

The lint rules of :mod:`repro.analysis.lint` are *opt-in per declaration*:
code states its own invariants with lightweight annotations and the checkers
enforce them mechanically.  Three kinds of annotation exist:

``@hot_path``
    A no-op decorator marking a function as part of the steady-state
    streaming hot path.  Inside such a function the *hot-path allocation*
    checker forbids per-call batch allocations (``np.stack`` /
    ``np.concatenate`` / ``np.array``, list-append loops, dtype-less
    ``np.zeros`` / ``np.empty``): hot-path buffers must come from grow-only
    arenas (:class:`repro.nn.compute.ArenaPool`,
    ``InferenceEngine._stage_batch``) so steady-state inference performs no
    large allocations.

``# guarded-by: <lock_attr>`` (comment)
    Placed on an instance-attribute assignment (normally in ``__init__``),
    declares that every later read or write of that attribute must happen
    inside a ``with self.<lock_attr>:`` block.  The *lock discipline* checker
    walks the AST scope chain to enforce it; the runtime validator
    (:mod:`repro.analysis.runtime`) enforces the same declarations
    dynamically under the concurrency stress tests.

``# lint: dtype-strict`` (module comment)
    Activates the *dtype contract* checker for a whole module: no
    ``np.float64`` / ``dtype=float`` literals, no dtype-less array
    constructors -- the fp32/int8 compute paths must never silently upcast.

Suppressions use ``# lint: disable=<rule> -- <justification>`` on the
offending line; the justification is mandatory (an unjustified suppression
is itself a violation).
"""

from __future__ import annotations

from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable)

#: Attribute set on functions decorated with :func:`hot_path` (runtime
#: introspection; the static checker matches the decorator name instead).
HOT_PATH_ATTRIBUTE = "__repro_hot_path__"

#: Comment prefix declaring a lock-guarded attribute.
GUARDED_BY_PREFIX = "guarded-by:"

#: Module-level marker comment activating the dtype-contract checker.
DTYPE_STRICT_MARKER = "lint: dtype-strict"

#: Comment prefix of an inline rule suppression.
SUPPRESS_PREFIX = "lint: disable="


def hot_path(func: F) -> F:
    """Mark ``func`` as steady-state hot-path code (no-op at runtime).

    The decorator only tags the function object; all enforcement is done by
    the static checker (:mod:`repro.analysis.lint.checkers.hotpath`), so the
    decorated function carries zero call overhead.
    """
    setattr(func, HOT_PATH_ATTRIBUTE, True)
    return func


def is_hot_path(func: Callable) -> bool:
    """Whether ``func`` was decorated with :func:`hot_path`."""
    return bool(getattr(func, HOT_PATH_ATTRIBUTE, False))


__all__ = [
    "DTYPE_STRICT_MARKER",
    "GUARDED_BY_PREFIX",
    "HOT_PATH_ATTRIBUTE",
    "SUPPRESS_PREFIX",
    "hot_path",
    "is_hot_path",
]
