"""Feature-space separability diagnostics.

Training the full DeepCSI CNN is the expensive part of every experiment; the
tools here answer the cheaper question "how much fingerprint information is
present in these features at all?":

* :class:`LinearProbe` -- a multinomial softmax regression trained with
  full-batch gradient descent on flattened, standardised features.  It is the
  probe used to calibrate the synthetic channel (see DESIGN.md) and a useful
  lower bound on what the CNN can achieve.
* :func:`centroid_separability` -- a distance-based statistic (between-class
  vs. within-class scatter) that requires no training at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.containers import FeedbackSample
from repro.datasets.features import FeatureConfig, FeatureExtractor


class SeparabilityError(ValueError):
    """Raised for invalid separability-analysis inputs."""


def _flatten_features(
    samples: Sequence[FeedbackSample], feature_config: Optional[FeatureConfig]
) -> Tuple[np.ndarray, np.ndarray]:
    if not samples:
        raise SeparabilityError("the sample list is empty")
    extractor = FeatureExtractor(feature_config)
    features, labels = extractor.transform_samples(samples)
    return features.reshape(len(features), -1), labels


@dataclass
class LinearProbe:
    """Multinomial softmax regression on flattened feedback features.

    Attributes
    ----------
    epochs:
        Number of full-batch gradient steps.
    learning_rate:
        Gradient-descent step size.
    l2:
        L2 regularisation weight.
    seed:
        Weight-initialisation seed.
    feature_config:
        Feature selection applied to the ``V~`` matrices before flattening.
    """

    epochs: int = 250
    learning_rate: float = 0.05
    l2: float = 1e-4
    seed: int = 0
    feature_config: Optional[FeatureConfig] = None

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise SeparabilityError("epochs must be >= 1")
        if self.learning_rate <= 0:
            raise SeparabilityError("learning_rate must be positive")
        if self.l2 < 0:
            raise SeparabilityError("l2 must be non-negative")
        self._weights: Optional[np.ndarray] = None
        self._bias: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None
        self._classes: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Training and inference
    # ------------------------------------------------------------------ #
    def fit(self, samples: Sequence[FeedbackSample]) -> "LinearProbe":
        """Fit the probe on labelled feedback samples."""
        features, labels = _flatten_features(samples, self.feature_config)
        self._mean = features.mean(axis=0, keepdims=True)
        self._std = features.std(axis=0, keepdims=True) + 1e-8
        standardized = (features - self._mean) / self._std

        self._classes = np.unique(labels)
        class_index = {cls: idx for idx, cls in enumerate(self._classes)}
        targets = np.array([class_index[label] for label in labels])
        num_classes = len(self._classes)
        if num_classes < 2:
            raise SeparabilityError("at least two classes are needed to fit the probe")

        rng = np.random.default_rng(self.seed)
        weights = 0.01 * rng.standard_normal((standardized.shape[1], num_classes))
        bias = np.zeros(num_classes)
        onehot = np.eye(num_classes)[targets]
        for _ in range(self.epochs):
            logits = standardized @ weights + bias
            logits -= logits.max(axis=1, keepdims=True)
            probabilities = np.exp(logits)
            probabilities /= probabilities.sum(axis=1, keepdims=True)
            gradient = (probabilities - onehot) / len(standardized)
            weights -= self.learning_rate * (
                standardized.T @ gradient + self.l2 * weights
            )
            bias -= self.learning_rate * gradient.sum(axis=0)
        self._weights = weights
        self._bias = bias
        return self

    def _require_fitted(self) -> None:
        if self._weights is None:
            raise SeparabilityError("the probe has not been fitted yet")

    def predict(self, samples: Sequence[FeedbackSample]) -> np.ndarray:
        """Predicted module identifiers."""
        self._require_fitted()
        features, _ = _flatten_features(samples, self.feature_config)
        standardized = (features - self._mean) / self._std
        logits = standardized @ self._weights + self._bias
        return self._classes[np.argmax(logits, axis=1)]

    def score(self, samples: Sequence[FeedbackSample]) -> float:
        """Accuracy on labelled samples."""
        predictions = self.predict(samples)
        truth = np.array([sample.module_id for sample in samples])
        return float(np.mean(predictions == truth))


def linear_probe_accuracy(
    train_samples: Sequence[FeedbackSample],
    test_samples: Sequence[FeedbackSample],
    feature_config: Optional[FeatureConfig] = None,
    epochs: int = 250,
    seed: int = 0,
) -> float:
    """Train a :class:`LinearProbe` and return its test accuracy."""
    probe = LinearProbe(epochs=epochs, seed=seed, feature_config=feature_config)
    probe.fit(train_samples)
    return probe.score(test_samples)


@dataclass(frozen=True)
class SeparabilityReport:
    """Distance-based class-separability statistics.

    Attributes
    ----------
    within_class_distance:
        Mean distance of a sample to its own class centroid.
    between_class_distance:
        Mean pairwise distance between class centroids.
    fisher_ratio:
        ``between_class_distance / within_class_distance`` (higher is more
        separable).
    nearest_centroid_accuracy:
        Accuracy of classifying each sample by its nearest class centroid
        (leave-centroid-in; an optimistic but training-free statistic).
    num_classes:
        Number of classes present in the sample set.
    """

    within_class_distance: float
    between_class_distance: float
    fisher_ratio: float
    nearest_centroid_accuracy: float
    num_classes: int


def centroid_separability(
    samples: Sequence[FeedbackSample],
    feature_config: Optional[FeatureConfig] = None,
) -> SeparabilityReport:
    """Compute distance-based separability statistics of a sample set."""
    features, labels = _flatten_features(samples, feature_config)
    mean = features.mean(axis=0, keepdims=True)
    std = features.std(axis=0, keepdims=True) + 1e-8
    standardized = (features - mean) / std

    classes = np.unique(labels)
    if len(classes) < 2:
        raise SeparabilityError("at least two classes are needed")
    centroids: Dict[int, np.ndarray] = {}
    within_distances = []
    for cls in classes:
        members = standardized[labels == cls]
        centroid = members.mean(axis=0)
        centroids[int(cls)] = centroid
        within_distances.extend(np.linalg.norm(members - centroid, axis=1))
    within = float(np.mean(within_distances))

    centroid_matrix = np.stack([centroids[int(cls)] for cls in classes])
    pairwise = []
    for i in range(len(classes)):
        for j in range(i + 1, len(classes)):
            pairwise.append(np.linalg.norm(centroid_matrix[i] - centroid_matrix[j]))
    between = float(np.mean(pairwise))

    distances = np.linalg.norm(
        standardized[:, np.newaxis, :] - centroid_matrix[np.newaxis, :, :], axis=2
    )
    predictions = classes[np.argmin(distances, axis=1)]
    nearest_accuracy = float(np.mean(predictions == labels))

    return SeparabilityReport(
        within_class_distance=within,
        between_class_distance=between,
        fisher_ratio=between / within if within > 0 else float("inf"),
        nearest_centroid_accuracy=nearest_accuracy,
        num_classes=len(classes),
    )
