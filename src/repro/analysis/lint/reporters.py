"""Text and JSON reporters of a :class:`~repro.analysis.lint.framework.LintReport`.

The JSON document is versioned (``schema``) so CI consumers can rely on its
shape; the schema is asserted by ``tests/test_lint_framework.py``.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.analysis.lint.framework import LintReport, Violation

#: Version tag of the JSON report layout.
JSON_SCHEMA = "repro-lint-report/1"


def render_text(report: LintReport, show_suppressed: bool = False) -> str:
    """Human-readable report: one line per violation plus a summary."""
    lines: List[str] = []
    for path, error in sorted(report.errors.items()):
        lines.append(f"{path}:0:0: lint/parse-error: {error}")
    for violation in report.violations:
        lines.append(violation.format())
    if show_suppressed:
        for violation in report.suppressed:
            lines.append(
                f"{violation.format()} [suppressed: {violation.justification}]"
            )
    total = len(report.violations) + len(report.errors)
    if total:
        by_rule = ", ".join(
            f"{rule}: {count}" for rule, count in report.by_rule().items()
        )
        lines.append(
            f"{total} violation{'s' if total != 1 else ''} in "
            f"{report.files_scanned} files ({by_rule})"
        )
    else:
        lines.append(
            f"clean: {report.files_scanned} files, 0 violations "
            f"({len(report.suppressed)} justified suppressions)"
        )
    return "\n".join(lines)


def _violation_dict(violation: Violation) -> Dict[str, object]:
    entry: Dict[str, object] = {
        "rule": violation.rule,
        "path": violation.path,
        "line": violation.line,
        "col": violation.col,
        "message": violation.message,
    }
    if violation.suppressed:
        entry["justification"] = violation.justification
    return entry


def render_json(report: LintReport, show_suppressed: bool = False) -> str:
    """Machine-readable report (see :data:`JSON_SCHEMA`)."""
    document = {
        "schema": JSON_SCHEMA,
        "paths": report.paths,
        "files_scanned": report.files_scanned,
        "ok": report.ok,
        "violations": [_violation_dict(v) for v in report.violations],
        "errors": dict(sorted(report.errors.items())),
        "summary": {
            "total": len(report.violations),
            "by_rule": report.by_rule(),
            "suppressed": len(report.suppressed),
        },
    }
    if show_suppressed:
        document["suppressed"] = [_violation_dict(v) for v in report.suppressed]
    return json.dumps(document, indent=2, sort_keys=False)


__all__ = ["JSON_SCHEMA", "render_json", "render_text"]
