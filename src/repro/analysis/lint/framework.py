"""Core of the ``repro-lint`` static-analysis framework.

The framework is deliberately small: a :class:`SourceFile` wraps one parsed
module (AST + comments + import aliases + a parent map for scope-chain
walks), a :class:`Checker` turns a source file into :class:`Violation`
instances, and :func:`run_lint` walks a file set, applies every registered
checker and resolves inline suppressions.

Checkers register themselves with :func:`register_checker`; the rule ids are
hierarchical (``family/rule``) so a suppression comment may disable one rule
(``# lint: disable=lock/unguarded-read -- why``) or a whole family
(``# lint: disable=lock -- why``).  Every suppression **must** carry a
justification after ``--``; a bare suppression is reported as a violation
itself (``lint/unjustified-suppression``).
"""

from __future__ import annotations

import ast
import io
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

from repro.analysis.annotations import SUPPRESS_PREFIX

#: Directories never scanned (fixture snippets contain seeded violations).
DEFAULT_EXCLUDED_PARTS = ("fixtures", ".git", "__pycache__", "results", ".hypothesis")


class LintError(ValueError):
    """Raised for invalid lint invocations (bad rule names, unreadable paths)."""


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: Set when an inline suppression with a justification covered the line.
    suppressed: bool = False
    justification: str = ""

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# lint: disable=`` comment."""

    line: int
    rules: Tuple[str, ...]
    justification: str

    def covers(self, rule: str) -> bool:
        """Whether this suppression disables ``rule`` (id or family prefix)."""
        family = rule.split("/", 1)[0]
        return any(entry in (rule, family) for entry in self.rules)


class SourceFile:
    """One parsed module plus the lookup structures the checkers share."""

    def __init__(self, path: str, text: str) -> None:
        self.path = path
        self.text = text
        self.tree = ast.parse(text, filename=path)
        self.lines = text.splitlines()
        #: line number -> raw comment text (without the leading ``#``).
        self.comments: Dict[int, str] = {}
        self._read_comments(text)
        #: child AST node -> parent node, for scope-chain walks.
        self.parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        #: local names bound to the numpy module (``import numpy as np``).
        self.numpy_aliases: Set[str] = set()
        #: local names bound to any ``multiprocessing`` module or submodule.
        self.multiprocessing_aliases: Set[str] = set()
        #: names imported *from* multiprocessing modules (name -> source module).
        self.multiprocessing_names: Dict[str, str] = {}
        self._read_imports()
        self.suppressions: List[Suppression] = []
        self._read_suppressions()

    # -- construction helpers ------------------------------------------- #
    def _read_comments(self, text: str) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(text).readline)
            for token in tokens:
                if token.type == tokenize.COMMENT:
                    self.comments[token.start[0]] = token.string.lstrip("#").strip()
        except tokenize.TokenError:  # pragma: no cover - ast.parse catches first
            pass

    def _read_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".", 1)[0]
                    if alias.name.split(".", 1)[0] == "numpy":
                        self.numpy_aliases.add(bound)
                    if alias.name.split(".", 1)[0] == "multiprocessing":
                        self.multiprocessing_aliases.add(bound)
            elif isinstance(node, ast.ImportFrom) and node.module:
                root = node.module.split(".", 1)[0]
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if root == "multiprocessing":
                        if alias.name in ("shared_memory", "synchronize"):
                            self.multiprocessing_aliases.add(bound)
                        else:
                            self.multiprocessing_names[bound] = node.module
                    if root == "numpy":
                        # ``from numpy import ...`` is not used on the hot
                        # paths; alias tracking stays at module granularity.
                        pass

    def _read_suppressions(self) -> None:
        for line, comment in self.comments.items():
            marker = comment.find(SUPPRESS_PREFIX)
            if marker < 0:
                continue
            body = comment[marker + len(SUPPRESS_PREFIX) :]
            rules_part, separator, justification = body.partition("--")
            rules = tuple(
                entry.strip() for entry in rules_part.split(",") if entry.strip()
            )
            self.suppressions.append(
                Suppression(
                    line=line,
                    rules=rules,
                    justification=justification.strip() if separator else "",
                )
            )

    # -- checker utilities ----------------------------------------------- #
    def comment_on(self, line: int) -> str:
        """The comment on ``line`` (empty string when there is none)."""
        return self.comments.get(line, "")

    def has_marker(self, marker: str) -> bool:
        """Whether any comment in the module contains ``marker``."""
        return any(marker in comment for comment in self.comments.values())

    def parent_chain(self, node: ast.AST) -> Iterator[ast.AST]:
        """Yield the ancestors of ``node``, innermost first."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        """The innermost function/lambda containing ``node``."""
        for ancestor in self.parent_chain(node):
            if isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                return ancestor
        return None

    def suppression_for(self, violation_line: int, rule: str) -> Optional[Suppression]:
        """The suppression covering ``rule`` on ``violation_line``.

        A suppression comment applies to its own line, or -- when written as
        a standalone comment line -- to the following line (for statements
        that are too long to carry an inline comment).
        """
        for suppression in self.suppressions:
            if suppression.line not in (violation_line, violation_line - 1):
                continue
            if suppression.line == violation_line - 1:
                source_line = (
                    self.lines[suppression.line - 1]
                    if suppression.line - 1 < len(self.lines)
                    else ""
                )
                if not source_line.lstrip().startswith("#"):
                    continue  # trailing comment of the previous statement
            if suppression.covers(rule):
                return suppression
        return None


class Checker:
    """Base class: one rule family inspecting one :class:`SourceFile`."""

    #: Family prefix of every rule this checker emits (e.g. ``"lock"``).
    family: str = ""
    #: ``rule id -> one-line description`` of every rule in the family.
    rules: Dict[str, str] = {}

    def check(self, source: SourceFile) -> Iterator[Violation]:
        raise NotImplementedError


#: Registered checker classes, in registration order.
_CHECKERS: List[Type[Checker]] = []


def register_checker(checker: Type[Checker]) -> Type[Checker]:
    """Class decorator adding ``checker`` to the global registry."""
    _CHECKERS.append(checker)
    return checker


def registered_checkers() -> Tuple[Type[Checker], ...]:
    return tuple(_CHECKERS)


def all_rules() -> Dict[str, str]:
    """``rule id -> description`` across every registered checker."""
    rules: Dict[str, str] = {}
    for checker in _CHECKERS:
        rules.update(checker.rules)
    return rules


@dataclass
class LintReport:
    """Outcome of one lint run."""

    paths: List[str]
    files_scanned: int = 0
    violations: List[Violation] = field(default_factory=list)
    suppressed: List[Violation] = field(default_factory=list)
    #: Files that could not be parsed (path -> error text).
    errors: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.errors

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return dict(sorted(counts.items()))


def iter_python_files(
    paths: Sequence[str], excluded_parts: Sequence[str] = DEFAULT_EXCLUDED_PARTS
) -> Iterator[Path]:
    """Every ``*.py`` file under ``paths``, skipping excluded directories."""
    for entry in paths:
        root = Path(entry)
        if root.is_file():
            yield root
            continue
        if not root.exists():
            raise LintError(f"path does not exist: {entry}")
        for candidate in sorted(root.rglob("*.py")):
            if any(part in excluded_parts for part in candidate.parts):
                continue
            yield candidate


def lint_source(
    source: SourceFile, select: Optional[Sequence[str]] = None
) -> Tuple[List[Violation], List[Violation]]:
    """Run the (selected) checkers over one parsed file.

    Returns ``(violations, suppressed)``.  Suppressions without a
    justification do not silence anything; they are reported as violations
    of ``lint/unjustified-suppression`` instead.
    """
    active: List[Violation] = []
    suppressed: List[Violation] = []
    for checker_cls in _CHECKERS:
        if select and checker_cls.family not in select and not any(
            rule in select for rule in checker_cls.rules
        ):
            continue
        checker = checker_cls()
        for violation in checker.check(source):
            if select and violation.rule not in select and (
                violation.rule.split("/", 1)[0] not in select
            ):
                continue
            suppression = source.suppression_for(violation.line, violation.rule)
            if suppression is not None and suppression.justification:
                suppressed.append(
                    Violation(
                        rule=violation.rule,
                        path=violation.path,
                        line=violation.line,
                        col=violation.col,
                        message=violation.message,
                        suppressed=True,
                        justification=suppression.justification,
                    )
                )
            else:
                active.append(violation)
    if not select or "lint" in select or "lint/unjustified-suppression" in select:
        for suppression in source.suppressions:
            if not suppression.justification:
                active.append(
                    Violation(
                        rule="lint/unjustified-suppression",
                        path=source.path,
                        line=suppression.line,
                        col=0,
                        message=(
                            "suppression comments require a justification: "
                            "# lint: disable=<rule> -- <why this is safe>"
                        ),
                    )
                )
    return active, suppressed


def run_lint(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    excluded_parts: Sequence[str] = DEFAULT_EXCLUDED_PARTS,
) -> LintReport:
    """Lint every Python file under ``paths`` with the registered checkers."""
    known = all_rules()
    families = {rule.split("/", 1)[0] for rule in known} | {"lint"}
    for entry in select or ():
        if entry not in known and entry not in families:
            raise LintError(
                f"unknown rule or family {entry!r}; known families: "
                f"{sorted(families)}"
            )
    report = LintReport(paths=list(paths))
    for path in iter_python_files(paths, excluded_parts):
        try:
            source = SourceFile(str(path), path.read_text())
        except (SyntaxError, UnicodeDecodeError, OSError) as error:
            report.errors[str(path)] = f"{type(error).__name__}: {error}"
            continue
        report.files_scanned += 1
        violations, suppressed = lint_source(source, select)
        report.violations.extend(violations)
        report.suppressed.extend(suppressed)
    report.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    report.suppressed.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return report
