"""Command-line front end of the repro-lint suite.

Reached two ways with identical behaviour::

    repro-csi lint [paths...]          # CLI sub-command
    python -m repro.analysis [paths...]

With no paths, the default project layout (``src``, ``benchmarks``,
``scripts``, ``tests``) is scanned relative to the current directory;
fixture directories (seeded violations for the checker tests) are always
excluded.  Exit code 0 means zero violations; 1 means violations (or parse
errors); 2 means bad usage.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.lint.framework import LintError, all_rules, run_lint
from repro.analysis.lint.reporters import render_json, render_text

#: Directories scanned when no explicit path is given (those that exist).
DEFAULT_PATHS = ("src", "benchmarks", "scripts", "tests")


def default_paths() -> List[str]:
    """The default scan roots that exist under the current directory."""
    return [entry for entry in DEFAULT_PATHS if Path(entry).is_dir()]


def build_lint_parser(parser: Optional[argparse.ArgumentParser] = None) -> argparse.ArgumentParser:
    """Configure (or create) the argument parser of the lint command."""
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro-lint",
            description="project-invariant static analysis (repro-lint)",
        )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src benchmarks scripts tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids or families to run (default: all)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list justified suppressions in the report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def run_lint_command(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if args.list_rules:
        for rule, description in sorted(all_rules().items()):
            print(f"{rule:<28s} {description}")
        return 0
    paths = list(args.paths) or default_paths()
    if not paths:
        print("error: no paths given and no default directories found", file=sys.stderr)
        return 2
    select = (
        [entry.strip() for entry in args.select.split(",") if entry.strip()]
        if args.select
        else None
    )
    try:
        report = run_lint(paths, select=select)
    except LintError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    renderer = render_json if args.format == "json" else render_text
    print(renderer(report, show_suppressed=args.show_suppressed))
    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro.analysis``."""
    parser = build_lint_parser()
    args = parser.parse_args(argv)
    return run_lint_command(args)


__all__ = ["build_lint_parser", "default_paths", "main", "run_lint_command"]
