"""Dtype-contract checker for ``# lint: dtype-strict`` modules.

The fp32 and int8 compute backends (:mod:`repro.nn.compute`) hold the
invariant that no intermediate silently upcasts to float64: a single stray
``np.float64`` temporary doubles the memory traffic of a conv activation and
quietly erases the backend's speedup.  A module opts in with a

    # lint: dtype-strict

comment (anywhere in the file); the checker then flags:

``dtype/float64``
    Explicit float64 mentions: ``np.float64`` / ``np.double`` attributes,
    ``dtype=float`` / ``astype(float)`` (the ``float`` builtin *is*
    float64), and ``"float64"`` / ``"<f8"`` dtype strings.  Deliberate
    fp64 uses (the exact-backend fallback, prepare-time exact integer
    round-trips) carry a justified suppression instead.

``dtype/missing-dtype``
    Dtype-less array constructors (``np.zeros``, ``np.empty``, ``np.ones``,
    ``np.full``, ``np.arange``, ``np.linspace``, ``np.eye``) -- they all
    default to float64.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.annotations import DTYPE_STRICT_MARKER
from repro.analysis.lint.framework import (
    Checker,
    SourceFile,
    Violation,
    register_checker,
)
from repro.analysis.lint.checkers.hotpath import has_dtype_argument, numpy_call_name

#: Constructors that default to float64 without an explicit dtype.
DTYPE_DEFAULTING_CALLS = (
    "zeros",
    "empty",
    "ones",
    "full",
    "arange",
    "linspace",
    "eye",
)

#: String spellings of the float64 dtype.
FLOAT64_STRINGS = ("float64", "<f8", ">f8", "f8", "double")


def _is_float64_expression(source: SourceFile, node: ast.AST) -> bool:
    """Whether ``node`` spells the float64 dtype."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        return (
            node.value.id in source.numpy_aliases
            and node.attr in ("float64", "double")
        )
    if isinstance(node, ast.Name):
        return node.id == "float"
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value in FLOAT64_STRINGS
    return False


@register_checker
class DtypeContractChecker(Checker):
    family = "dtype"
    rules = {
        "dtype/float64": (
            "an explicit float64 dtype in a dtype-strict module (fp32/int8 "
            "paths must not upcast)"
        ),
        "dtype/missing-dtype": (
            "a dtype-less array constructor in a dtype-strict module "
            "(defaults to float64)"
        ),
    }

    def check(self, source: SourceFile) -> Iterator[Violation]:
        if not source.has_marker(DTYPE_STRICT_MARKER):
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            violation = self._check_call(source, node)
            if violation is not None:
                yield violation

    def _check_call(
        self, source: SourceFile, call: ast.Call
    ) -> Optional[Violation]:
        name = numpy_call_name(source, call)
        if name in DTYPE_DEFAULTING_CALLS and not has_dtype_argument(call):
            return Violation(
                rule="dtype/missing-dtype",
                path=source.path,
                line=call.lineno,
                col=call.col_offset,
                message=(
                    f"np.{name}() without an explicit dtype defaults to "
                    f"float64; this module is dtype-strict, pass dtype= "
                    f"explicitly"
                ),
            )
        # dtype= keyword or astype(...) argument spelling float64.
        candidates = [
            keyword.value for keyword in call.keywords if keyword.arg == "dtype"
        ]
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr == "astype":
            candidates.extend(call.args[:1])
        for candidate in candidates:
            if _is_float64_expression(source, candidate):
                return Violation(
                    rule="dtype/float64",
                    path=source.path,
                    line=candidate.lineno,
                    col=candidate.col_offset,
                    message=(
                        "explicit float64 dtype in a dtype-strict module; "
                        "the fp32/int8 compute paths must stay in their "
                        "declared precision (suppress with a justification "
                        "for deliberate fp64 fallbacks)"
                    ),
                )
        return None
