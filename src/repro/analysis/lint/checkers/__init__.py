"""Checker families of the repro-lint suite.

Importing this package registers every built-in checker with the framework
registry (:func:`repro.analysis.lint.framework.register_checker`):

* :mod:`~repro.analysis.lint.checkers.locks` -- ``# guarded-by:`` lock
  discipline over shared mutable engine/service/backend state;
* :mod:`~repro.analysis.lint.checkers.hotpath` -- no per-call batch
  allocations inside ``@hot_path`` functions;
* :mod:`~repro.analysis.lint.checkers.dtypes` -- no silent float64 upcasts
  in ``# lint: dtype-strict`` modules;
* :mod:`~repro.analysis.lint.checkers.shm` -- shared-memory segment hygiene
  and pickle-safe cross-process payloads.
"""

from repro.analysis.lint.checkers.dtypes import DtypeContractChecker
from repro.analysis.lint.checkers.hotpath import HotPathAllocationChecker
from repro.analysis.lint.checkers.locks import LockDisciplineChecker
from repro.analysis.lint.checkers.shm import ProcessSafetyChecker

__all__ = [
    "DtypeContractChecker",
    "HotPathAllocationChecker",
    "LockDisciplineChecker",
    "ProcessSafetyChecker",
]
