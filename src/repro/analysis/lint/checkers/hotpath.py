"""Hot-path allocation checker for ``@hot_path`` functions.

Functions decorated with :func:`repro.analysis.annotations.hot_path` are the
steady-state streaming hot path: after warm-up they must not allocate fresh
batch-sized buffers per call.  The PR-7 compute backends earn their >=2x
speedups largely from grow-only arenas (:class:`repro.nn.compute.ArenaPool`)
and the engine's staging buffers; this checker keeps per-call allocations
from creeping back in:

``hot-path/banned-alloc``
    Calls to the NumPy batch constructors that always allocate
    (``np.stack``, ``np.concatenate``, ``np.array``, ``np.vstack``,
    ``np.hstack``, ``np.dstack``, ``np.column_stack``, ``np.append``).
    Use an arena buffer or a preallocated ``out=`` target instead
    (``np.asarray`` is fine -- it does not copy an existing array).

``hot-path/missing-dtype``
    ``np.zeros`` / ``np.empty`` / ``np.ones`` / ``np.full`` without an
    explicit dtype: the default is float64, which silently doubles memory
    traffic and upcasts downstream arithmetic on the fp32/int8 paths.

``hot-path/list-append-in-loop``
    ``<local>.append(...)`` / ``<local>.extend(...)`` inside a ``for`` /
    ``while`` loop: per-item Python-level accumulation is exactly the
    per-frame overhead the batched engine exists to avoid.  Preallocate the
    result (``[None] * n``) or use a comprehension (one bulk allocation).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.analysis.lint.framework import (
    Checker,
    SourceFile,
    Violation,
    register_checker,
)

#: NumPy callables that always allocate a fresh batch-sized array.
BANNED_NUMPY_CALLS = (
    "stack",
    "concatenate",
    "array",
    "vstack",
    "hstack",
    "dstack",
    "column_stack",
    "append",
)

#: NumPy constructors that default to float64 when no dtype is given.
DTYPE_REQUIRED_CALLS = ("zeros", "empty", "ones", "full")


def is_hot_path_function(node: ast.AST) -> bool:
    """Whether ``node`` is a function decorated with ``@hot_path``."""
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "hot_path":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "hot_path":
            return True
    return False


def numpy_call_name(source: SourceFile, call: ast.Call) -> Optional[str]:
    """The attribute name when ``call`` is ``np.<name>(...)``, else ``None``."""
    func = call.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.value.id in source.numpy_aliases:
            return func.attr
    return None


def has_dtype_argument(call: ast.Call) -> bool:
    """Whether a NumPy constructor call pins its dtype explicitly."""
    if any(keyword.arg == "dtype" for keyword in call.keywords):
        return True
    # np.zeros(shape, dtype) / np.full(shape, fill, dtype) positional forms.
    positional_dtype_index = 2 if _call_name(call) == "full" else 1
    return len(call.args) > positional_dtype_index


def _call_name(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


@register_checker
class HotPathAllocationChecker(Checker):
    family = "hot-path"
    rules = {
        "hot-path/banned-alloc": (
            "an always-allocating NumPy batch constructor is called inside "
            "a @hot_path function"
        ),
        "hot-path/missing-dtype": (
            "a dtype-less np.zeros/np.empty/np.ones/np.full inside a "
            "@hot_path function (defaults to float64)"
        ),
        "hot-path/list-append-in-loop": (
            "per-item list append/extend inside a loop in a @hot_path "
            "function"
        ),
    }

    def check(self, source: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(source.tree):
            if is_hot_path_function(node):
                yield from self._check_function(source, node)

    def _check_function(
        self, source: SourceFile, function: ast.FunctionDef
    ) -> Iterator[Violation]:
        local_lists = self._local_sequence_names(function)
        for node in ast.walk(function):
            if not isinstance(node, ast.Call):
                continue
            name = numpy_call_name(source, node)
            if name in BANNED_NUMPY_CALLS:
                yield Violation(
                    rule="hot-path/banned-alloc",
                    path=source.path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"np.{name}() allocates a fresh array on every call; "
                        f"stage through a grow-only arena buffer "
                        f"(ArenaPool.get / _stage_batch) or write into a "
                        f"preallocated out= target"
                    ),
                )
                continue
            if name in DTYPE_REQUIRED_CALLS and not has_dtype_argument(node):
                yield Violation(
                    rule="hot-path/missing-dtype",
                    path=source.path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"np.{name}() without an explicit dtype defaults to "
                        f"float64 on the hot path; pass dtype= explicitly"
                    ),
                )
                continue
            yield from self._check_append(source, node, local_lists)

    def _check_append(
        self, source: SourceFile, call: ast.Call, local_lists: Set[str]
    ) -> Iterator[Violation]:
        func = call.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in ("append", "extend")
            and isinstance(func.value, ast.Name)
            and func.value.id in local_lists
        ):
            return
        for ancestor in source.parent_chain(call):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return
            if isinstance(ancestor, (ast.For, ast.While)):
                yield Violation(
                    rule="hot-path/list-append-in-loop",
                    path=source.path,
                    line=call.lineno,
                    col=call.col_offset,
                    message=(
                        f"'{func.value.id}.{func.attr}' grows a list "
                        f"per iteration on the hot path; preallocate "
                        f"('[None] * n') or build it with one comprehension"
                    ),
                )
                return

    @staticmethod
    def _local_sequence_names(function: ast.FunctionDef) -> Set[str]:
        """Local names bound to a fresh list/deque in this function."""
        names: Set[str] = set()
        for node in ast.walk(function):
            value: Optional[ast.expr] = None
            target: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
            if not isinstance(target, ast.Name) or value is None:
                continue
            if isinstance(value, (ast.List, ast.ListComp)):
                names.add(target.id)
            elif isinstance(value, ast.Call) and _call_name(value) in (
                "list",
                "deque",
            ):
                names.add(target.id)
        return names
