"""Process/shared-memory safety checker.

Active on every module that imports ``multiprocessing`` (or its
``shared_memory`` / ``synchronize`` submodules).  Three rule groups cover
the failure modes the process execution backend (PR 6) was built around:

``shm/missing-cleanup``
    Every ``SharedMemory(create=True)`` segment must be released on all
    paths: the holder it is assigned to needs both a ``.close()`` and an
    ``.unlink()`` call somewhere in the module, and at least one of them
    must sit on an exception path (an ``except`` handler or a ``finally``
    block) so a constructor/startup failure cannot leak the segment.  A
    segment created without being stored anywhere can never be released and
    is flagged immediately.

``shm/payload-closure``
    Lambdas (and references to locally-defined functions) must not ride in
    payloads that cross a process boundary: the ``args`` of a
    ``Process(...)`` constructor, or the payload (first positional argument)
    of a ``.put(...)`` call.  They pickle-fail at best (lambdas) or
    silently rebind state at worst.  Parent-side keyword callbacks (e.g.
    the transport's ``liveness=``/``on_wait=``) never cross the boundary
    and are not flagged.

``shm/primitive-in-loop``
    Queues, locks, semaphores, events, processes and shared-memory segments
    must be created at startup, never inside a ``while`` worker loop: each
    construction allocates OS resources (fds, named segments) per iteration
    and silently changes which object the two sides synchronise on.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.analysis.lint.framework import (
    Checker,
    SourceFile,
    Violation,
    register_checker,
)

#: Constructor names of multiprocessing/synchronisation primitives.
PRIMITIVE_NAMES = (
    "Queue",
    "SimpleQueue",
    "JoinableQueue",
    "Semaphore",
    "BoundedSemaphore",
    "Lock",
    "RLock",
    "Event",
    "Condition",
    "Barrier",
    "Pipe",
    "Process",
    "Pool",
    "Manager",
    "SharedMemory",
)


def _uses_multiprocessing(source: SourceFile) -> bool:
    return bool(source.multiprocessing_aliases or source.multiprocessing_names)


def _is_shared_memory_create(call: ast.Call) -> bool:
    """Whether ``call`` is ``SharedMemory(..., create=True, ...)``."""
    func = call.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else ""
    )
    if name != "SharedMemory":
        return False
    for keyword in call.keywords:
        if keyword.arg == "create":
            return (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            )
    return False


def _holder_name(source: SourceFile, call: ast.Call) -> Optional[str]:
    """The name/attribute the call result is bound to (``x`` or ``self.x``)."""
    parent = source.parents.get(call)
    if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
        target = parent.targets[0]
    elif isinstance(parent, ast.AnnAssign):
        target = parent.target
    else:
        return None
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return None


@register_checker
class ProcessSafetyChecker(Checker):
    family = "shm"
    rules = {
        "shm/missing-cleanup": (
            "a SharedMemory(create=True) segment without close()+unlink() "
            "on all paths including exception handlers"
        ),
        "shm/payload-closure": (
            "a lambda/local function inside a payload shipped across a "
            "process boundary (Process args or queue put)"
        ),
        "shm/primitive-in-loop": (
            "a multiprocessing primitive constructed inside a while loop "
            "(worker loops must reuse startup-time primitives)"
        ),
    }

    def check(self, source: SourceFile) -> Iterator[Violation]:
        if not _uses_multiprocessing(source):
            return
        local_functions = self._local_function_names(source)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            if _is_shared_memory_create(node):
                yield from self._check_cleanup(source, node)
            yield from self._check_payload(source, node, local_functions)
            yield from self._check_primitive_in_loop(source, node)

    # -- shm/missing-cleanup -------------------------------------------- #
    def _check_cleanup(
        self, source: SourceFile, call: ast.Call
    ) -> Iterator[Violation]:
        holder = _holder_name(source, call)
        if holder is None:
            yield Violation(
                rule="shm/missing-cleanup",
                path=source.path,
                line=call.lineno,
                col=call.col_offset,
                message=(
                    "SharedMemory(create=True) result is not stored; the "
                    "segment can never be close()d or unlink()ed"
                ),
            )
            return
        cleanup_calls: dict = {"close": [], "unlink": []}
        for node in ast.walk(source.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            if node.func.attr not in cleanup_calls:
                continue
            base = node.func.value
            base_name = (
                base.attr if isinstance(base, ast.Attribute) else (
                    base.id if isinstance(base, ast.Name) else None
                )
            )
            if base_name == holder:
                cleanup_calls[node.func.attr].append(node)
        missing = [name for name, nodes in cleanup_calls.items() if not nodes]
        if missing:
            yield Violation(
                rule="shm/missing-cleanup",
                path=source.path,
                line=call.lineno,
                col=call.col_offset,
                message=(
                    f"SharedMemory(create=True) stored in {holder!r} has no "
                    f"{' or '.join(sorted(missing))}() call in this module; "
                    f"segments must be released on every path"
                ),
            )
            return
        on_exception_path = any(
            self._on_exception_path(source, node)
            for nodes in cleanup_calls.values()
            for node in nodes
        )
        if not on_exception_path:
            yield Violation(
                rule="shm/missing-cleanup",
                path=source.path,
                line=call.lineno,
                col=call.col_offset,
                message=(
                    f"no close()/unlink() of {holder!r} sits on an exception "
                    f"path (except handler or finally); a startup failure "
                    f"would leak the segment"
                ),
            )

    @staticmethod
    def _on_exception_path(source: SourceFile, node: ast.AST) -> bool:
        """Whether ``node`` is inside an except handler or finally block."""
        child = node
        for ancestor in source.parent_chain(node):
            if isinstance(ancestor, ast.ExceptHandler):
                return True
            if isinstance(ancestor, ast.Try) and any(
                child is statement for statement in ancestor.finalbody
            ):
                return True
            child = ancestor
        return False

    # -- shm/payload-closure --------------------------------------------- #
    @staticmethod
    def _local_function_names(source: SourceFile) -> Set[str]:
        """Names of functions defined inside other functions (closures)."""
        names: Set[str] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                enclosing = source.enclosing_function(node)
                if enclosing is not None:
                    names.add(node.name)
        return names

    def _check_payload(
        self, source: SourceFile, call: ast.Call, local_functions: Set[str]
    ) -> Iterator[Violation]:
        payloads: List[ast.expr] = []
        func = call.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        if name == "Process":
            payloads.extend(
                keyword.value
                for keyword in call.keywords
                if keyword.arg in ("args", "kwargs")
            )
        elif name == "put" and isinstance(func, ast.Attribute) and call.args:
            payloads.append(call.args[0])
        for payload in payloads:
            for node in ast.walk(payload):
                if isinstance(node, ast.Lambda):
                    yield Violation(
                        rule="shm/payload-closure",
                        path=source.path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            "a lambda travels in a cross-process payload; "
                            "lambdas do not pickle -- ship data and rebuild "
                            "behaviour on the worker side"
                        ),
                    )
                elif isinstance(node, ast.Name) and node.id in local_functions:
                    yield Violation(
                        rule="shm/payload-closure",
                        path=source.path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"locally-defined function {node.id!r} travels in "
                            f"a cross-process payload; closures do not pickle "
                            f"-- use a module-level function"
                        ),
                    )

    # -- shm/primitive-in-loop ------------------------------------------- #
    def _check_primitive_in_loop(
        self, source: SourceFile, call: ast.Call
    ) -> Iterator[Violation]:
        func = call.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        if name not in PRIMITIVE_NAMES:
            return
        # Only constructor-style calls: Name(...) of an imported primitive,
        # or Attribute(...) on a module/context object.
        if isinstance(func, ast.Name) and name not in source.multiprocessing_names:
            return
        for ancestor in source.parent_chain(call):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return
            if isinstance(ancestor, ast.While):
                yield Violation(
                    rule="shm/primitive-in-loop",
                    path=source.path,
                    line=call.lineno,
                    col=call.col_offset,
                    message=(
                        f"{name}() constructed inside a while loop; worker "
                        f"loops must reuse primitives created at startup "
                        f"(per-iteration construction leaks OS resources "
                        f"and desynchronises the two sides)"
                    ),
                )
                return
