"""Lock-discipline checker: ``# guarded-by: <lock>`` enforcement.

An instance attribute declared with a ``# guarded-by: _lock`` comment on its
assignment (normally in ``__init__``) may only be read or written inside a
``with self._lock:`` block.  The checker resolves, for every access of a
guarded attribute, the chain of ``with`` statements *within the same
function* (a ``with`` in an outer function does not guard code that merely
*defines* a closure inside it -- the closure runs later, after the lock was
released), and flags:

``lock/unguarded-read`` / ``lock/unguarded-write``
    An access outside every ``with self.<lock>:`` block of its function.
    ``__init__`` is exempt: construction happens-before any sharing.

``lock/guarded-ref-escape``
    A ``return``/``yield`` whose value *is* a guarded attribute (bare or as
    a tuple element) -- even inside the lock, returning the raw reference
    lets the caller use it after the lock is released.  Return a copy
    instead (``dataclasses.replace``, ``dict(...)``, ``list(...)``).

The same declarations drive the runtime validator
(:mod:`repro.analysis.runtime`), which swaps the lock for a recording lock
and asserts the discipline dynamically under the concurrency stress tests.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.annotations import GUARDED_BY_PREFIX
from repro.analysis.lint.framework import (
    Checker,
    SourceFile,
    Violation,
    register_checker,
)


def _self_attribute(node: ast.AST) -> Optional[str]:
    """The attribute name when ``node`` is ``self.<name>``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def extract_guarded_declarations(
    source: SourceFile, class_node: ast.ClassDef
) -> Dict[str, Tuple[str, int]]:
    """``attribute -> (lock attribute, declaration line)`` for one class.

    A declaration is a ``self.<attr> = ...`` statement whose line (or the
    standalone comment line directly above it) carries a
    ``# guarded-by: <lock>`` comment.
    """
    guarded: Dict[str, Tuple[str, int]] = {}
    for node in ast.walk(class_node):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.target is not None:
            targets = [node.target]
        else:
            continue
        comment = source.comment_on(node.lineno)
        if GUARDED_BY_PREFIX not in comment:
            above = source.comment_on(node.lineno - 1)
            line_above = (
                source.lines[node.lineno - 2] if node.lineno >= 2 else ""
            )
            if GUARDED_BY_PREFIX in above and line_above.lstrip().startswith("#"):
                comment = above
            else:
                continue
        lock_name = comment.split(GUARDED_BY_PREFIX, 1)[1].strip().split()[0]
        for target in targets:
            attribute = _self_attribute(target)
            if attribute is not None:
                guarded[attribute] = (lock_name, node.lineno)
    return guarded


@register_checker
class LockDisciplineChecker(Checker):
    family = "lock"
    rules = {
        "lock/unguarded-read": (
            "a guarded-by attribute is read outside its lock's with-block"
        ),
        "lock/unguarded-write": (
            "a guarded-by attribute is written outside its lock's with-block"
        ),
        "lock/guarded-ref-escape": (
            "a guarded-by attribute reference is returned/yielded raw, "
            "escaping its critical section"
        ),
    }

    def check(self, source: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(source, node)

    # ------------------------------------------------------------------ #
    def _check_class(
        self, source: SourceFile, class_node: ast.ClassDef
    ) -> Iterator[Violation]:
        guarded = extract_guarded_declarations(source, class_node)
        if not guarded:
            return
        for method in self._methods(class_node):
            if method.name == "__init__":
                continue  # construction happens-before sharing
            yield from self._check_function(source, method, guarded)

    @staticmethod
    def _methods(class_node: ast.ClassDef) -> Iterator[ast.FunctionDef]:
        for node in ast.walk(class_node):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def _check_function(
        self,
        source: SourceFile,
        function: ast.FunctionDef,
        guarded: Dict[str, Tuple[str, int]],
    ) -> Iterator[Violation]:
        for node in ast.walk(function):
            attribute = _self_attribute(node)
            if attribute is None or attribute not in guarded:
                continue
            if source.enclosing_function(node) is not function:
                continue  # reported when the nested function is visited
            lock_name, _ = guarded[attribute]
            escape = self._escape_statement(source, node, function)
            if escape is not None:
                yield Violation(
                    rule="lock/guarded-ref-escape",
                    path=source.path,
                    line=escape.lineno,
                    col=escape.col_offset,
                    message=(
                        f"'self.{attribute}' (guarded by '{lock_name}') is "
                        f"{'yielded' if isinstance(escape, ast.Yield) else 'returned'}"
                        f" as a raw reference; return a copy so the caller "
                        f"cannot touch it outside the lock"
                    ),
                )
                continue
            if self._holds_lock(source, node, function, lock_name):
                continue
            write = isinstance(node.ctx, (ast.Store, ast.Del))
            yield Violation(
                rule="lock/unguarded-write" if write else "lock/unguarded-read",
                path=source.path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"'self.{attribute}' is declared guarded-by '{lock_name}' "
                    f"but is {'written' if write else 'read'} outside a "
                    f"'with self.{lock_name}:' block"
                ),
            )

    def _holds_lock(
        self,
        source: SourceFile,
        node: ast.AST,
        function: ast.FunctionDef,
        lock_name: str,
    ) -> bool:
        """Whether a ``with self.<lock_name>:`` encloses ``node`` in ``function``."""
        for ancestor in source.parent_chain(node):
            if ancestor is function:
                return False
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                for item in ancestor.items:
                    if _self_attribute(item.context_expr) == lock_name:
                        return True
        return False

    @staticmethod
    def _escape_statement(
        source: SourceFile, node: ast.AST, function: ast.FunctionDef
    ) -> Optional[ast.AST]:
        """The Return/Yield node when ``node`` escapes as a raw reference.

        Only the bare attribute (``return self._g``) and direct tuple
        elements (``return self._g, x``) count: wrapping the value in a call
        (``replace(self._g)``, ``len(self._g)``) consumes rather than
        escapes the reference.
        """
        parent = source.parents.get(node)
        if isinstance(parent, ast.Tuple):
            parent = source.parents.get(parent)
        if isinstance(parent, (ast.Return, ast.Yield)):
            for ancestor in source.parent_chain(parent):
                if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    return parent if ancestor is function else None
        return None
