"""repro-lint: project-invariant static analysis.

The codebase carries three layers of invariants that used to live only in
review memory: lock-guarded shared state on the streaming path (PRs 2/6
each shipped a torn-read found late), zero-steady-state-allocation and
no-silent-fp64-upcast rules in the compute backends (PR 7), and
shared-memory/pickle hygiene in the process transport (PR 6).  This package
machine-checks them:

* annotations (:mod:`repro.analysis.annotations`) let the code declare its
  invariants (``# guarded-by:``, ``@hot_path``, ``# lint: dtype-strict``);
* checkers (:mod:`repro.analysis.lint.checkers`) enforce the declarations
  over the AST;
* the runtime validator (:mod:`repro.analysis.runtime`) replays the same
  guarded-by declarations dynamically under the concurrency stress tests,
  validating the static rules against ground truth;
* ``repro-csi lint`` / ``python -m repro.analysis`` run the suite; the CI
  ``static-analysis`` job fails on any violation.

Suppressions are per-line and must be justified::

    value = self._stats  # lint: disable=lock/unguarded-read -- read-only debug dump

The shipping bar is zero violations repo-wide: genuine bugs the checkers
surface are fixed, deliberate exceptions carry a justification that the
reviewer (and ``--show-suppressed``) can audit.
"""

from repro.analysis.lint import checkers as _checkers  # registers built-ins
from repro.analysis.lint.cli import main
from repro.analysis.lint.framework import (
    Checker,
    LintError,
    LintReport,
    SourceFile,
    Suppression,
    Violation,
    all_rules,
    lint_source,
    register_checker,
    registered_checkers,
    run_lint,
)
from repro.analysis.lint.reporters import JSON_SCHEMA, render_json, render_text

del _checkers

__all__ = [
    "Checker",
    "JSON_SCHEMA",
    "LintError",
    "LintReport",
    "SourceFile",
    "Suppression",
    "Violation",
    "all_rules",
    "lint_source",
    "main",
    "register_checker",
    "registered_checkers",
    "render_json",
    "render_text",
    "run_lint",
]
