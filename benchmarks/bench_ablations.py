"""Ablation benchmarks for the design choices called out in DESIGN.md.

Two ablations beyond the paper's figures:

* **Attention ablation** -- the spatial-attention block (Fig. 4) is removed
  from the architecture and the S2 split (unseen beamformee positions) is
  re-evaluated.  The paper motivates the block as helping the network focus
  on the fingerprint-bearing regions.
* **Quantisation-codebook ablation** -- the whole dataset is regenerated with
  the coarser (b_psi = 5, b_phi = 7) codebook and the S2 split is
  re-evaluated, quantifying how much the finer feedback codebook contributes
  to the fingerprint quality (Section V of the paper studies the error, this
  ablation closes the loop to accuracy).
"""

from dataclasses import replace

from repro.datasets.generator import generate_dataset_d1
from repro.datasets.splits import D1_SPLITS, d1_split
from repro.experiments.common import (
    cached_dataset_d1,
    default_feature_config,
    train_and_evaluate,
)
from repro.feedback.quantization import QuantizationConfig


def test_ablation_spatial_attention(benchmark, profile, record):
    """DeepCSI with vs. without the spatial-attention block on split S2."""

    def run():
        dataset = cached_dataset_d1(profile)
        train, test = d1_split(dataset, D1_SPLITS["S2"], beamformee_id=1)
        feature_config = default_feature_config(profile)
        with_attention = train_and_evaluate(
            train, test, profile, feature_config=feature_config, label="S2 / attention"
        )
        without_attention = train_and_evaluate(
            train,
            test,
            profile,
            feature_config=feature_config,
            model_config=profile.model.without_attention(),
            label="S2 / no attention",
        )
        return with_attention, without_attention

    with_attention, without_attention = benchmark.pedantic(run, rounds=1, iterations=1)
    report = "\n".join(
        [
            "Ablation - spatial attention block (split S2, beamformee 1)",
            f"  with attention:    {100.0 * with_attention.accuracy:6.2f}% "
            f"({with_attention.num_parameters} params)",
            f"  without attention: {100.0 * without_attention.accuracy:6.2f}% "
            f"({without_attention.num_parameters} params)",
        ]
    )
    record(
        "ablation_attention",
        report,
        data={
            "accuracy": {
                "with_attention": with_attention.accuracy,
                "without_attention": without_attention.accuracy,
            },
            "num_parameters": {
                "with_attention": with_attention.num_parameters,
                "without_attention": without_attention.num_parameters,
            },
        },
    )

    # The attention block should not hurt, and both variants must solve the
    # task well above chance.
    assert with_attention.accuracy > 0.5
    assert without_attention.accuracy > 0.5
    assert with_attention.accuracy >= without_attention.accuracy - 0.08


def test_ablation_quantization_codebook(benchmark, profile, record):
    """Fine (9, 7) vs. coarse (7, 5) feedback codebook on split S2."""

    def run():
        fine_dataset = cached_dataset_d1(profile)
        coarse_config = replace(
            profile.d1_config(),
            quantization=QuantizationConfig(b_phi=7, b_psi=5),
        )
        coarse_dataset = generate_dataset_d1(coarse_config)
        feature_config = default_feature_config(profile)
        results = {}
        for label, dataset in (("fine", fine_dataset), ("coarse", coarse_dataset)):
            train, test = d1_split(dataset, D1_SPLITS["S2"], beamformee_id=1)
            results[label] = train_and_evaluate(
                train,
                test,
                profile,
                feature_config=feature_config,
                label=f"S2 / {label} codebook",
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report = "\n".join(
        [
            "Ablation - feedback quantisation codebook (split S2, beamformee 1)",
            f"  b_phi=9, b_psi=7 (paper): {100.0 * results['fine'].accuracy:6.2f}%",
            f"  b_phi=7, b_psi=5:         {100.0 * results['coarse'].accuracy:6.2f}%",
        ]
    )
    record(
        "ablation_quantization",
        report,
        data={
            "accuracy": {
                "fine_b_phi9_b_psi7": results["fine"].accuracy,
                "coarse_b_phi7_b_psi5": results["coarse"].accuracy,
            },
        },
    )

    # Both codebooks carry the fingerprint for the S2 split, and the finer
    # codebook should not be worse than the coarse one by a wide margin.
    assert results["fine"].accuracy > 0.5
    assert results["fine"].accuracy >= results["coarse"].accuracy - 0.1
