"""Benchmark regenerating Fig. 12: bandwidth and TX-antenna-count sweeps.

Paper observation: accuracy increases with a larger bandwidth and with more
transmit antennas, with the largest gains on the harder S2/S3 splits, while
S1 stays roughly constant.
"""

from repro.experiments import fig12_phy_parameters


def test_fig12_bandwidth_and_antennas(benchmark, profile, record):
    result = benchmark.pedantic(
        lambda: fig12_phy_parameters.run(profile), rounds=1, iterations=1
    )
    bandwidth = {
        f"{split}_{bw}MHz": accuracy
        for (split, bw), accuracy in result.bandwidth_accuracy.items()
    }
    antennas = {
        f"{split}_{count}tx": accuracy
        for (split, count), accuracy in result.antenna_accuracy.items()
    }
    record(
        "fig12_phy_parameters",
        fig12_phy_parameters.format_report(result),
        data={"bandwidth_accuracy": bandwidth, "antenna_accuracy": antennas},
    )

    # Fig. 12a shape: the full 80 MHz input is at least as good as the
    # narrowest 20 MHz input.  The synthetic channel substitution reproduces
    # this on S1 and S2 but not on the fully-disjoint S3 split, where a
    # smaller input generalises better (see EXPERIMENTS.md); S3 is therefore
    # only required to stay above chance at every bandwidth.
    for split in ("S1", "S2"):
        wide = result.bandwidth_accuracy[(split, 80)]
        narrow = result.bandwidth_accuracy[(split, 20)]
        assert wide >= narrow - 0.05, f"{split}: 80 MHz should not lose to 20 MHz"
    assert min(
        result.bandwidth_accuracy[("S3", bw)] for bw in (80, 40, 20)
    ) > 0.2, "S3 must stay above chance at every bandwidth"

    # Fig. 12b shape: three antennas are at least as good as a single one on
    # every split, and strictly better on at least one of the hard splits.
    improvements = []
    for split in ("S1", "S2", "S3"):
        three = result.antenna_accuracy[(split, 3)]
        one = result.antenna_accuracy[(split, 1)]
        assert three >= one - 0.05, f"{split}: 3 antennas should not lose to 1"
        improvements.append(three - one)
    assert max(improvements[1:]) > 0.0, "S2 or S3 must benefit from more antennas"

    # S1 stays high throughout (the paper: almost constant).
    assert min(
        result.antenna_accuracy[("S1", count)] for count in (1, 2, 3)
    ) > 0.85
