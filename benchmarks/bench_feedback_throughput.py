"""Micro-benchmarks of the feedback substrate (true timing benchmarks).

These benchmarks exercise the per-sounding processing path an online observer
runs (Fig. 1: capture -> reconstruct -> infer) and the beamformee-side
compression.  Unlike the figure benchmarks they use several rounds so
pytest-benchmark produces meaningful latency statistics.
"""

import numpy as np
import pytest

from repro.feedback.frames import VhtMimoControl, pack_feedback_frame, parse_feedback_frame
from repro.feedback.givens import compress_v_matrix, reconstruct_v_matrix
from repro.feedback.quantization import QuantizationConfig, quantize_angles
from repro.phy.channel import MultipathChannel
from repro.phy.devices import AccessPoint, make_beamformee, make_module_population
from repro.phy.geometry import AP_POSITION_A, beamformee_positions
from repro.phy.mimo import beamforming_matrix, compute_cfr
from repro.phy.ofdm import sounding_layout


@pytest.fixture(scope="module")
def sounding_v_matrix():
    """A realistic (K=234, M=3, N_SS=2) beamforming matrix."""
    layout = sounding_layout(80)
    module = make_module_population(num_modules=1, seed=3)[0]
    access_point = AccessPoint(module=module, position=AP_POSITION_A)
    bf_pos, _ = beamformee_positions(3)
    beamformee = make_beamformee(1, bf_pos)
    channel = MultipathChannel(environment_seed=3)
    cfr = compute_cfr(access_point, beamformee, channel, layout, np.random.default_rng(0))
    return beamforming_matrix(cfr, 2)


def test_bench_beamformee_compression(benchmark, sounding_v_matrix):
    """Beamformee side: V -> Givens angles (Algorithm 1) for one sounding."""
    angles = benchmark(compress_v_matrix, sounding_v_matrix)
    assert angles.num_subcarriers == 234


def test_bench_observer_reconstruction(benchmark, sounding_v_matrix):
    """Observer side: quantised angles -> V~ (Eq. 7) for one sounding."""
    angles = compress_v_matrix(sounding_v_matrix)
    reconstructed = benchmark(reconstruct_v_matrix, angles)
    assert reconstructed.shape == sounding_v_matrix.shape


def test_bench_frame_packing(benchmark, sounding_v_matrix):
    """Packing the quantised angles into a VHT compressed-beamforming frame."""
    quantized = quantize_angles(compress_v_matrix(sounding_v_matrix), QuantizationConfig())
    control = VhtMimoControl(
        num_columns=2, num_rows=3, bandwidth_mhz=80, codebook=1, num_subcarriers=234
    )
    payload = benchmark(pack_feedback_frame, quantized, control)
    assert len(payload) > 1000


def test_bench_frame_parsing(benchmark, sounding_v_matrix):
    """Parsing a sniffed frame back into angle codewords."""
    quantized = quantize_angles(compress_v_matrix(sounding_v_matrix), QuantizationConfig())
    control = VhtMimoControl(
        num_columns=2, num_rows=3, bandwidth_mhz=80, codebook=1, num_subcarriers=234
    )
    payload = pack_feedback_frame(quantized, control)
    parsed_control, parsed = benchmark(parse_feedback_frame, payload)
    assert parsed_control.num_subcarriers == 234
    np.testing.assert_array_equal(parsed.q_phi, quantized.q_phi)


def test_bench_full_sounding_simulation(benchmark):
    """Channel + impairments + SVD for one NDP sounding (dataset generation cost)."""
    layout = sounding_layout(80)
    module = make_module_population(num_modules=1, seed=5)[0]
    access_point = AccessPoint(module=module, position=AP_POSITION_A)
    bf_pos, _ = beamformee_positions(5)
    beamformee = make_beamformee(1, bf_pos)
    channel = MultipathChannel(environment_seed=5)
    rng = np.random.default_rng(0)

    def sound_once():
        cfr = compute_cfr(access_point, beamformee, channel, layout, rng)
        return beamforming_matrix(cfr, 2)

    v_matrix = benchmark(sound_once)
    assert v_matrix.shape == (234, 3, 2)
