"""Micro-benchmarks of the feedback substrate (true timing benchmarks).

These benchmarks exercise the per-sounding processing path an online observer
runs (Fig. 1: capture -> reconstruct -> infer) and the beamformee-side
compression.  Unlike the figure benchmarks they use several rounds so
pytest-benchmark produces meaningful latency statistics.

``test_codeword_preprocessing_is_at_least_2x_faster`` is the acceptance gate
of the codeword-native preprocessing fast path: integer codewords ->
NN-ready feature tensors through the trig-LUT arena reconstruction must
deliver at least 2x the throughput of the legacy dequantize + reconstruct +
extract pipeline (on the ``fast`` complex64 tables), while the ``exact``
float64 tables stay bitwise identical to the legacy output.  Set
``REPRO_BENCH_SMOKE=1`` to shrink the workload for a CI smoke run.
"""

import os
import time

import numpy as np
import pytest

from repro.arena import ArenaPool
from repro.datasets.features import FeatureConfig, FeatureExtractor, strided_subcarriers
from repro.feedback.frames import VhtMimoControl, pack_feedback_frame, parse_feedback_frame
from repro.feedback.givens import (
    compress_v_matrix,
    reconstruct_accumulator_quantized,
    reconstruct_v_matrices,
    reconstruct_v_matrix,
)
from repro.feedback.quantization import (
    QuantizationConfig,
    dequantize_angles_batch,
    quantize_angles,
    stack_quantized_angles,
)
from repro.phy.channel import MultipathChannel
from repro.phy.devices import AccessPoint, make_beamformee, make_module_population
from repro.phy.geometry import AP_POSITION_A, beamformee_positions
from repro.phy.mimo import beamforming_matrix, compute_cfr
from repro.phy.ofdm import sounding_layout

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Preprocessing workload: one engine micro-batch of the paper's geometry.
PREP_NUM_SUBCARRIERS = 32 if SMOKE else 234
PREP_BATCH = 16 if SMOKE else 64
PREP_STRIDE = 4
PREP_NUM_TX = 3
PREP_NUM_STREAMS = 2
PREP_REPEATS = 2 if SMOKE else 5


@pytest.fixture(scope="module")
def sounding_v_matrix():
    """A realistic (K=234, M=3, N_SS=2) beamforming matrix."""
    layout = sounding_layout(80)
    module = make_module_population(num_modules=1, seed=3)[0]
    access_point = AccessPoint(module=module, position=AP_POSITION_A)
    bf_pos, _ = beamformee_positions(3)
    beamformee = make_beamformee(1, bf_pos)
    channel = MultipathChannel(environment_seed=3)
    cfr = compute_cfr(access_point, beamformee, channel, layout, np.random.default_rng(0))
    return beamforming_matrix(cfr, 2)


def test_bench_beamformee_compression(benchmark, sounding_v_matrix):
    """Beamformee side: V -> Givens angles (Algorithm 1) for one sounding."""
    angles = benchmark(compress_v_matrix, sounding_v_matrix)
    assert angles.num_subcarriers == 234


def test_bench_observer_reconstruction(benchmark, sounding_v_matrix):
    """Observer side: quantised angles -> V~ (Eq. 7) for one sounding."""
    angles = compress_v_matrix(sounding_v_matrix)
    reconstructed = benchmark(reconstruct_v_matrix, angles)
    assert reconstructed.shape == sounding_v_matrix.shape


def test_bench_frame_packing(benchmark, sounding_v_matrix):
    """Packing the quantised angles into a VHT compressed-beamforming frame."""
    quantized = quantize_angles(compress_v_matrix(sounding_v_matrix), QuantizationConfig())
    control = VhtMimoControl(
        num_columns=2, num_rows=3, bandwidth_mhz=80, codebook=1, num_subcarriers=234
    )
    payload = benchmark(pack_feedback_frame, quantized, control)
    assert len(payload) > 1000


def test_bench_frame_parsing(benchmark, sounding_v_matrix):
    """Parsing a sniffed frame back into angle codewords."""
    quantized = quantize_angles(compress_v_matrix(sounding_v_matrix), QuantizationConfig())
    control = VhtMimoControl(
        num_columns=2, num_rows=3, bandwidth_mhz=80, codebook=1, num_subcarriers=234
    )
    payload = pack_feedback_frame(quantized, control)
    parsed_control, parsed = benchmark(parse_feedback_frame, payload)
    assert parsed_control.num_subcarriers == 234
    np.testing.assert_array_equal(parsed.q_phi, quantized.q_phi)


@pytest.fixture(scope="module")
def codeword_batch():
    """One stacked micro-batch of quantised codewords (the engine's unit)."""
    rng = np.random.default_rng(21)
    config = QuantizationConfig()
    items = []
    for _ in range(PREP_BATCH):
        raw = rng.standard_normal(
            (PREP_NUM_SUBCARRIERS, PREP_NUM_TX, PREP_NUM_TX)
        ) + 1j * rng.standard_normal((PREP_NUM_SUBCARRIERS, PREP_NUM_TX, PREP_NUM_TX))
        q, _ = np.linalg.qr(raw)
        items.append(
            quantize_angles(compress_v_matrix(q[:, :, :PREP_NUM_STREAMS]), config)
        )
    return stack_quantized_angles(items)


def _best_of(repeats, fn):
    """Best wall-clock of ``repeats`` runs (least noisy point estimate)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_codeword_preprocessing_is_at_least_2x_faster(codeword_batch, record):
    """Codewords -> features: >= 2x the legacy dequantize+reconstruct path."""
    q_phi, q_psi, config, num_tx, num_streams = codeword_batch
    extractor = FeatureExtractor(
        FeatureConfig(
            stream_indices=(0,),
            subcarrier_positions=strided_subcarriers(PREP_NUM_SUBCARRIERS, PREP_STRIDE),
        )
    )

    def legacy():
        phi, psi = dequantize_angles_batch(q_phi, q_psi, config)
        v_batch = reconstruct_v_matrices(phi, psi, num_tx, num_streams)
        return extractor.transform_matrices(v_batch)

    def fused(fast, arena):
        accumulator = reconstruct_accumulator_quantized(
            q_phi, q_psi, config, num_tx, num_streams, fast=fast, arena=arena
        )
        return extractor.transform_accumulator(accumulator, num_streams, arena=arena)

    exact_arena = ArenaPool()
    fast_arena = ArenaPool()
    # Warm the arenas so the timed runs measure the steady state.
    legacy_features = legacy()
    exact_features = fused(False, exact_arena).copy()
    fast_features = fused(True, fast_arena).copy()

    # Parity is part of the gate: exact must be bitwise, fast within fp32.
    assert exact_features.tobytes() == legacy_features.tobytes()
    assert np.max(np.abs(fast_features - legacy_features)) < 1e-4

    legacy_seconds, _ = _best_of(PREP_REPEATS, legacy)
    exact_seconds, _ = _best_of(PREP_REPEATS, lambda: fused(False, exact_arena))
    fast_seconds, _ = _best_of(PREP_REPEATS, lambda: fused(True, fast_arena))

    legacy_fps = PREP_BATCH / legacy_seconds
    exact_fps = PREP_BATCH / exact_seconds
    fast_fps = PREP_BATCH / fast_seconds
    exact_speedup = legacy_seconds / exact_seconds
    fast_speedup = legacy_seconds / fast_seconds

    record(
        "bench_codeword_preprocessing",
        "\n".join(
            [
                "Codeword-native preprocessing (codewords -> feature tensors)",
                f"  workload: batch {PREP_BATCH}, (K, M, N_SS) = "
                f"({PREP_NUM_SUBCARRIERS}, {PREP_NUM_TX}, {PREP_NUM_STREAMS}), "
                f"stride {PREP_STRIDE}{' [smoke]' if SMOKE else ''}",
                f"  legacy dequantize+reconstruct: {legacy_fps:10.1f} frames/s "
                f"({1000.0 * legacy_seconds:.2f} ms/batch)",
                f"  fast path (exact, float64):    {exact_fps:10.1f} frames/s "
                f"({1000.0 * exact_seconds:.2f} ms/batch, "
                f"{exact_speedup:.2f}x, bitwise identical)",
                f"  fast path (fast, complex64):   {fast_fps:10.1f} frames/s "
                f"({1000.0 * fast_seconds:.2f} ms/batch, {fast_speedup:.2f}x)",
            ]
        ),
        data={
            "smoke": SMOKE,
            "batch": PREP_BATCH,
            "num_subcarriers": PREP_NUM_SUBCARRIERS,
            "stride": PREP_STRIDE,
            "frames_per_second": {
                "legacy": legacy_fps,
                "exact": exact_fps,
                "fast": fast_fps,
            },
            "speedup_vs_legacy": {"exact": exact_speedup, "fast": fast_speedup},
            "exact_bitwise_identical": True,
            "gate": {
                "threshold": 2.0,
                # The 2x gate is defined against the realistic full-size
                # workload; the tiny smoke shapes are dominated by fixed
                # per-batch overhead shared by every path.
                "enforced": not SMOKE,
                "passed": fast_speedup >= 2.0,
            },
        },
    )
    if not SMOKE:
        assert fast_speedup >= 2.0, (
            f"codeword fast path is only {fast_speedup:.2f}x faster than the "
            f"legacy dequantize+reconstruct pipeline (required: >= 2x)"
        )


def test_bench_full_sounding_simulation(benchmark):
    """Channel + impairments + SVD for one NDP sounding (dataset generation cost)."""
    layout = sounding_layout(80)
    module = make_module_population(num_modules=1, seed=5)[0]
    access_point = AccessPoint(module=module, position=AP_POSITION_A)
    bf_pos, _ = beamformee_positions(5)
    beamformee = make_beamformee(1, bf_pos)
    channel = MultipathChannel(environment_seed=5)
    rng = np.random.default_rng(0)

    def sound_once():
        cfr = compute_cfr(access_point, beamformee, channel, layout, rng)
        return beamforming_matrix(cfr, 2)

    v_matrix = benchmark(sound_once)
    assert v_matrix.shape == (234, 3, 2)
