"""Benchmark regenerating Tables I and II: the train/test split definitions.

The paper's tables are shaded figures; this benchmark prints the concrete
position/group assignments adopted by the reproduction (documented in
DESIGN.md Section 5) together with the number of samples each split yields
on the generated datasets, so the split bookkeeping is auditable alongside
the classification results.
"""

from repro.datasets.splits import (
    D1_SPLITS,
    D2_SPLITS,
    d1_split,
    d2_split,
    d2_subpath_split,
)
from repro.experiments.common import cached_dataset_d1, cached_dataset_d2


def _mark(positions, members):
    return "".join(" x " if p in members else " . " for p in positions)


def test_table1_and_table2_splits(benchmark, profile, record):
    """Print the Table I / Table II split matrices and their sample counts."""

    def run():
        d1 = cached_dataset_d1(profile)
        d2 = cached_dataset_d2(profile)
        counts = {}
        for name, split in D1_SPLITS.items():
            train, test = d1_split(d1, split, beamformee_id=1)
            counts[name] = (len(train), len(test))
        for name, split in D2_SPLITS.items():
            train, test = d2_split(d2, split, beamformee_id=1)
            counts[name] = (len(train), len(test))
        sub_train, sub_test = d2_subpath_split(d2, beamformee_id=1)
        counts["S4 sub-paths"] = (len(sub_train), len(sub_test))
        return counts

    counts = benchmark.pedantic(run, rounds=1, iterations=1)

    positions = list(range(1, 10))
    lines = ["Table I - D1 train/test beamformee positions (x = used)"]
    lines.append("  set   " + "".join(f" {p:>2d}" for p in positions) + "   (train / test)")
    for name, split in D1_SPLITS.items():
        lines.append(
            f"  {name:<5s} train {_mark(positions, split.train_positions)}"
        )
        lines.append(
            f"  {name:<5s} test  {_mark(positions, split.test_positions)}"
            f"   {counts[name][0]} / {counts[name][1]} samples (beamformee 1)"
        )
    lines.append("")
    lines.append("Table II - D2 train/test measurement groups")
    groups = ("fix1", "fix2", "mob1", "mob2")
    lines.append("  set   " + "".join(f" {g:>5s}" for g in groups) + "   (train / test)")
    for name, split in D2_SPLITS.items():
        train_marks = "".join(
            "  x  " if g in split.train_groups else "  .  " for g in groups
        )
        test_marks = "".join(
            "  x  " if g in split.test_groups else "  .  " for g in groups
        )
        lines.append(f"  {name:<5s} train {train_marks}")
        lines.append(
            f"  {name:<5s} test  {test_marks}"
            f"   {counts[name][0]} / {counts[name][1]} samples (beamformee 1)"
        )
    lines.append(
        f"  Fig. 17b sub-path split: {counts['S4 sub-paths'][0]} train / "
        f"{counts['S4 sub-paths'][1]} test samples"
    )
    report = "\n".join(lines)
    record(
        "table1_table2_splits",
        report,
        data={
            "sample_counts": {
                name: {"train": train_count, "test": test_count}
                for name, (train_count, test_count) in counts.items()
            },
        },
    )

    # Structural sanity: every split must produce both sets, S1 shares
    # positions between train and test (time split) while S2/S3 do not.
    for name, (train_count, test_count) in counts.items():
        assert train_count > 0 and test_count > 0, f"split {name} is degenerate"
    assert set(D1_SPLITS["S1"].train_positions) == set(D1_SPLITS["S1"].test_positions)
    assert not set(D1_SPLITS["S2"].train_positions) & set(D1_SPLITS["S2"].test_positions)
    assert not set(D1_SPLITS["S3"].train_positions) & set(D1_SPLITS["S3"].test_positions)
