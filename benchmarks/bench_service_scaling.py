"""Scaling of the sharded streaming service on multi-source traffic.

The acceptance gate of the service tentpole: on traffic from *many*
concurrent low-rate beamformees, the 4-worker
:class:`repro.core.service.StreamingService` must classify at least **2x**
the frames/sec of the single-engine path, while producing **bitwise
identical** per-source majority verdicts.

The single-engine baseline is PR 1's way of serving many per-source streams:
one :class:`~repro.core.engine.InferenceEngine` per source (the
``authenticate_capture(source_address=...)`` pattern), which keeps per-source
state isolated but pays small-batch inference because every beamformee only
sounds a handful of times inside an observation window.  The sharded service
keeps the same per-source isolation (a source never spans two shards) while
batching *across* the sources that share a shard, so its micro-batches stay
full; on multi-core hardware the worker threads additionally overlap the
per-shard CNN forwards.

For transparency the report also includes the single *shared* engine
(all sources mixed into one engine, no queue isolation) and the 1-worker
service, so the cross-source-batching and threading contributions are
visible separately.

Set ``REPRO_BENCH_SMOKE=1`` to shrink the workload for a CI smoke run.

Run directly with::

    PYTHONPATH=src python -m pytest -q -s benchmarks/bench_service_scaling.py
"""

import os
import time

import numpy as np
import pytest

from repro.core.classifier import ClassifierConfig, DeepCsiClassifier
from repro.core.engine import InferenceEngine
from repro.core.model import DeepCsiModelConfig
from repro.core.service import StreamingService, shard_for_source
from repro.datasets.containers import FeedbackSample
from repro.datasets.features import FeatureConfig, strided_subcarriers
from repro.nn.training import TrainingConfig

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Workload geometry: (K, M, N_SS), sub-carrier stride, traffic shape.
NUM_SUBCARRIERS = 32 if SMOKE else 234
STRIDE = 4
NUM_TX = 3
NUM_STREAMS = 2
NUM_SOURCES = 32 if SMOKE else 256
FRAMES_PER_SOURCE = 3
NUM_WORKERS = 4
BATCH_SIZE = 64
REPEATS = 3

BENCH_MODEL = DeepCsiModelConfig(
    num_filters=16,
    kernel_widths=(7, 5),
    pool_width=2,
    dense_units=(32,),
    dropout_retain=(0.8,),
    attention_kernel_width=3,
)


def _random_v_batch(rng, batch, num_subcarriers, num_tx, num_streams):
    """Random matrices with orthonormal columns, shape (B, K, M, N_SS)."""
    raw = rng.standard_normal(
        (batch, num_subcarriers, num_tx, num_tx)
    ) + 1j * rng.standard_normal((batch, num_subcarriers, num_tx, num_tx))
    q, _ = np.linalg.qr(raw)
    return q[..., :num_streams]


@pytest.fixture(scope="module")
def trained_classifier():
    """A tiny classifier trained on synthetic V~ data (3 fake modules)."""
    rng = np.random.default_rng(7)
    samples = []
    for module_id in range(3):
        v_batch = _random_v_batch(rng, 24, NUM_SUBCARRIERS, NUM_TX, NUM_STREAMS)
        v_batch = v_batch + 0.1 * (module_id + 1)
        samples.extend(
            FeedbackSample(v_tilde=v, module_id=module_id, beamformee_id=1)
            for v in v_batch
        )
    classifier = DeepCsiClassifier(
        ClassifierConfig(
            num_classes=3,
            feature=FeatureConfig(
                stream_indices=(0,),
                subcarrier_positions=strided_subcarriers(NUM_SUBCARRIERS, STRIDE),
            ),
            model=BENCH_MODEL,
            training=TrainingConfig(
                epochs=2, batch_size=16, early_stopping_patience=None
            ),
        )
    )
    classifier.fit(samples)
    return classifier


@pytest.fixture(scope="module")
def traffic():
    """Interleaved multi-source traffic: NUM_SOURCES beamformees, round-robin.

    Every source sounds FRAMES_PER_SOURCE times; consecutive frames belong
    to different sources, like a monitor-mode capture of a dense network.
    """
    rng = np.random.default_rng(11)
    per_source = {
        f"02:00:00:00:{index // 256:02x}:{index % 256:02x}": list(
            _random_v_batch(
                rng, FRAMES_PER_SOURCE, NUM_SUBCARRIERS, NUM_TX, NUM_STREAMS
            )
        )
        for index in range(NUM_SOURCES)
    }
    stream = []
    for position in range(FRAMES_PER_SOURCE):
        for source, frames in per_source.items():
            stream.append((source, frames[position]))
    return per_source, stream


def _best_of_interleaved(repeats, fns):
    """Best steady-state seconds of ``repeats`` rounds over several paths.

    Each ``fn`` times its own serving phase (setup like engine construction
    or worker spawning is excluded everywhere) and returns
    ``(serving_seconds, verdicts)``.  The paths are measured round-robin so
    slow drift of the host (frequency scaling, noisy neighbours) hits every
    path evenly instead of biasing whichever ran last.
    """
    best = [float("inf")] * len(fns)
    results = [None] * len(fns)
    for _ in range(repeats):
        for index, fn in enumerate(fns):
            seconds, results[index] = fn()
            best[index] = min(best[index], seconds)
    return list(zip(best, results))


def _per_source_engines(classifier, per_source):
    """PR 1 baseline: one single-threaded engine per source stream."""
    engines = {
        source: InferenceEngine(classifier, batch_size=BATCH_SIZE)
        for source in per_source
    }
    started = time.perf_counter()
    for source, frames in per_source.items():
        engines[source].drain(frames, source=source)
    seconds = time.perf_counter() - started
    return seconds, {
        source: engine.verdict(source) for source, engine in engines.items()
    }


def _shared_engine(classifier, stream):
    """One shared engine, all sources mixed into its micro-batches."""
    engine = InferenceEngine(classifier, batch_size=BATCH_SIZE)
    started = time.perf_counter()
    for source, frame in stream:
        engine.submit(frame, source=source)
    engine.flush()
    seconds = time.perf_counter() - started
    return seconds, {source: engine.verdict(source) for source in engine.sources}


def _single_engine_per_shard_substream(classifier, stream, num_workers):
    """Reference for bitwise parity: one single engine per routed sub-stream.

    Feeding every shard's sub-stream through its own single-threaded engine
    reproduces the exact batch contents the sharded service processes, so
    the results must match bit for bit - the definition of "sharding
    preserves the single-engine semantics".
    """
    verdicts = {}
    for shard_index in range(num_workers):
        engine = InferenceEngine(classifier, batch_size=BATCH_SIZE)
        for source, frame in stream:
            if shard_for_source(source, num_workers) == shard_index:
                engine.submit(frame, source=source)
        engine.flush()
        for source in engine.sources:
            verdicts[source] = engine.verdict(source)
    return verdicts


def _service(classifier, stream, num_workers, backend="threads"):
    """The sharded service: ``num_workers`` shards on the given backend.

    Worker startup (thread spawn / process fork + shm setup) happens before
    the clock starts: the service is a long-lived observer, so the gate
    measures steady-state serving throughput.
    """
    with StreamingService(
        classifier, num_workers=num_workers, batch_size=BATCH_SIZE, backend=backend
    ) as service:
        started = time.perf_counter()
        for source, frame in stream:
            service.submit(frame, source=source)
        service.flush()
        seconds = time.perf_counter() - started
        return seconds, {
            source: service.verdict(source) for source in service.sources
        }


def test_sharded_service_scales_multi_source_traffic(
    trained_classifier, traffic, record
):
    """The tentpole gate: >= 2x frames/sec at 4 workers, identical verdicts."""
    per_source, stream = traffic
    num_frames = len(stream)

    (
        (baseline_seconds, baseline_verdicts),
        (shared_seconds, shared_verdicts),
        (one_worker_seconds, one_worker_verdicts),
        (service_seconds, service_verdicts),
    ) = _best_of_interleaved(
        REPEATS,
        [
            lambda: _per_source_engines(trained_classifier, per_source),
            lambda: _shared_engine(trained_classifier, stream),
            lambda: _service(trained_classifier, stream, 1),
            lambda: _service(trained_classifier, stream, NUM_WORKERS),
        ],
    )

    # Sharded verdicts must be bitwise identical to a single engine fed the
    # same routed sub-streams: identical batch contents, identical weights
    # in every shard's classifier clone, per-source order preserved.  Paths
    # that pack the same frames into *different* micro-batches (the shared
    # engine, the per-source engines) run different GEMM shapes, so their
    # confidences may drift in the last ULP - compared with a 1e-12
    # relative tolerance instead.
    reference_verdicts = _single_engine_per_shard_substream(
        trained_classifier, stream, NUM_WORKERS
    )
    assert set(service_verdicts) == set(baseline_verdicts) == set(shared_verdicts)
    assert service_verdicts == reference_verdicts  # bitwise
    for source, verdict in service_verdicts.items():
        for other in (
            baseline_verdicts[source],
            shared_verdicts[source],
            one_worker_verdicts[source],
        ):
            assert verdict.module_id == other.module_id
            assert verdict.num_votes == other.num_votes
            assert verdict.window_size == other.window_size
            assert verdict.confidence == pytest.approx(other.confidence, rel=1e-12)

    baseline_fps = num_frames / baseline_seconds
    shared_fps = num_frames / shared_seconds
    one_worker_fps = num_frames / one_worker_seconds
    service_fps = num_frames / service_seconds
    speedup = service_fps / baseline_fps
    record(
        "bench_service_scaling",
        "\n".join(
            [
                "Sharded streaming service vs single-engine paths",
                f"  workload: {NUM_SOURCES} sources x {FRAMES_PER_SOURCE} "
                f"frames, (K, M, N_SS) = "
                f"({NUM_SUBCARRIERS}, {NUM_TX}, {NUM_STREAMS}), "
                f"stride {STRIDE}, batch size {BATCH_SIZE}"
                f"{' [smoke]' if SMOKE else ''}",
                f"  engine per source:     {baseline_fps:10.1f} frames/s "
                "(per-source batches)",
                f"  shared single engine:  {shared_fps:10.1f} frames/s "
                "(cross-source batches, no isolation)",
                f"  service, 1 worker:     {one_worker_fps:10.1f} frames/s",
                f"  service, {NUM_WORKERS} workers:    {service_fps:10.1f} "
                f"frames/s",
                f"  speedup vs baseline:   {speedup:10.2f}x "
                f"(gate: >= 2x; {os.cpu_count()} CPU core(s))",
            ]
        ),
        data={
            "backend": "threads",
            "workers": NUM_WORKERS,
            "cpu_cores": os.cpu_count(),
            "smoke": SMOKE,
            "num_frames": num_frames,
            "frames_per_second": {
                "engine_per_source": baseline_fps,
                "shared_engine": shared_fps,
                "service_1_worker": one_worker_fps,
                f"service_{NUM_WORKERS}_workers": service_fps,
            },
            "speedup_vs_baseline": speedup,
            "gate": {"threshold": 2.0, "enforced": True, "passed": speedup >= 2.0},
        },
    )
    assert speedup >= 2.0, (
        f"4-worker service is only {speedup:.2f}x faster than the "
        f"per-source single-engine path (required: >= 2x)"
    )


#: Multi-core gate of the process backend: 2 process workers must serve at
#: least this multiple of the 1-process-worker throughput.
PROCESS_WORKERS = 2
PROCESS_SPEEDUP_GATE = 1.6


def test_process_backend_scales_on_multi_core(trained_classifier, traffic, record):
    """Process shards break the GIL ceiling: >= 1.6x frames/s at 2 workers.

    Thread shards only overlap inside BLAS calls; process shards run the
    whole hot path (feature extraction, Givens reconstruction, NumPy
    dispatch) in parallel, fed through shared-memory ring buffers.  The
    near-linear gate is only meaningful when the host actually has a second
    core - on single-core runners (CI smoke included) the verdict-parity
    assertions still run and the skipped gate is recorded in the report.
    """
    _, stream = traffic
    num_frames = len(stream)
    cores = os.cpu_count() or 1
    multi_core = cores >= 2

    (
        (one_proc_seconds, one_proc_verdicts),
        (two_proc_seconds, two_proc_verdicts),
    ) = _best_of_interleaved(
        REPEATS,
        [
            lambda: _service(trained_classifier, stream, 1, backend="processes"),
            lambda: _service(
                trained_classifier, stream, PROCESS_WORKERS, backend="processes"
            ),
        ],
    )

    # Bitwise verdict parity against single engines fed the same routed
    # sub-streams - the invariant holds on any host, gate or no gate.
    assert two_proc_verdicts == _single_engine_per_shard_substream(
        trained_classifier, stream, PROCESS_WORKERS
    )
    assert one_proc_verdicts == _single_engine_per_shard_substream(
        trained_classifier, stream, 1
    )

    one_proc_fps = num_frames / one_proc_seconds
    two_proc_fps = num_frames / two_proc_seconds
    speedup = two_proc_fps / one_proc_fps
    gate_note = (
        f"gate: >= {PROCESS_SPEEDUP_GATE}x"
        if multi_core
        else f"gate >= {PROCESS_SPEEDUP_GATE}x SKIPPED: single-core host"
    )
    record(
        "bench_service_scaling_processes",
        "\n".join(
            [
                "Process-backend scaling (shared-memory frame transport)",
                f"  workload: {NUM_SOURCES} sources x {FRAMES_PER_SOURCE} "
                f"frames, (K, M, N_SS) = "
                f"({NUM_SUBCARRIERS}, {NUM_TX}, {NUM_STREAMS}), "
                f"stride {STRIDE}, batch size {BATCH_SIZE}"
                f"{' [smoke]' if SMOKE else ''}",
                f"  service, 1 process:    {one_proc_fps:10.1f} frames/s",
                f"  service, {PROCESS_WORKERS} processes:   "
                f"{two_proc_fps:10.1f} frames/s",
                f"  speedup:               {speedup:10.2f}x "
                f"({gate_note}; {cores} CPU core(s))",
                "  verdicts: bitwise identical to single engines fed the "
                "routed sub-streams",
            ]
        ),
        data={
            "backend": "processes",
            "workers": PROCESS_WORKERS,
            "cpu_cores": cores,
            "smoke": SMOKE,
            "num_frames": num_frames,
            "frames_per_second": {
                "service_1_process": one_proc_fps,
                f"service_{PROCESS_WORKERS}_processes": two_proc_fps,
            },
            "speedup_vs_1_process": speedup,
            "gate": {
                "threshold": PROCESS_SPEEDUP_GATE,
                "enforced": multi_core,
                "passed": speedup >= PROCESS_SPEEDUP_GATE if multi_core else None,
            },
        },
    )
    if multi_core:
        assert speedup >= PROCESS_SPEEDUP_GATE, (
            f"{PROCESS_WORKERS} process workers are only {speedup:.2f}x faster "
            f"than 1 on a {cores}-core host "
            f"(required: >= {PROCESS_SPEEDUP_GATE}x)"
        )


def test_process_backend_results_match_threads(trained_classifier, traffic):
    """Both backends produce bitwise-identical results on identical traffic."""
    _, stream = traffic
    subset = stream[: min(len(stream), 96)]

    def run(backend):
        with StreamingService(
            trained_classifier,
            num_workers=PROCESS_WORKERS,
            batch_size=BATCH_SIZE,
            backend=backend,
        ) as service:
            for source, frame in subset:
                service.submit(frame, source=source)
            service.flush()
            return sorted(service.collect(), key=lambda result: result.sequence)

    threaded = run("threads")
    processed = run("processes")
    assert len(threaded) == len(processed) == len(subset)
    for thread_result, process_result in zip(threaded, processed):
        assert thread_result.sequence == process_result.sequence
        assert thread_result.source == process_result.source
        assert (
            thread_result.predicted_module_id == process_result.predicted_module_id
        )
        assert thread_result.confidence == process_result.confidence  # bitwise


def test_service_results_match_single_engine_bitwise(trained_classifier, traffic):
    """Per-frame results match the routed single-engine sub-streams bitwise."""
    _, stream = traffic
    subset = stream[: min(len(stream), 96)]

    expected = {}
    for shard_index in range(NUM_WORKERS):
        engine = InferenceEngine(trained_classifier, batch_size=BATCH_SIZE)
        substream = [
            (index, source, frame)
            for index, (source, frame) in enumerate(subset)
            if shard_for_source(source, NUM_WORKERS) == shard_index
        ]
        results = []
        for _, source, frame in substream:
            results.extend(engine.submit(frame, source=source))
        results.extend(engine.flush())
        assert len(results) == len(substream)
        for (global_index, source, _), result in zip(substream, results):
            expected[global_index] = (source, result)

    with StreamingService(
        trained_classifier, num_workers=NUM_WORKERS, batch_size=BATCH_SIZE
    ) as service:
        for source, frame in subset:
            service.submit(frame, source=source)
        service.flush()
        actual = sorted(service.collect(), key=lambda result: result.sequence)

    assert len(actual) == len(expected) == len(subset)
    for got in actual:
        source, want = expected[got.sequence]
        assert got.source == source == want.source
        assert got.predicted_module_id == want.predicted_module_id
        assert got.confidence == want.confidence  # bitwise
