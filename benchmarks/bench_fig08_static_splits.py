"""Benchmark regenerating Fig. 8: S1/S2/S3 confusion matrices (beamformee 1).

Paper values: S1 = 98.02 %, S2 = 75.41 %, S3 = 42.97 %.  The reproduction
asserts the *shape*: S1 is close to perfect and accuracy degrades
monotonically from S1 to S3.
"""

from repro.experiments import fig08_static_splits


def test_fig08_static_splits(benchmark, profile, record):
    result = benchmark.pedantic(
        lambda: fig08_static_splits.run(profile), rounds=1, iterations=1
    )
    s1, s2, s3 = (result.accuracy(name) for name in ("S1", "S2", "S3"))
    record(
        "fig08_static_splits",
        fig08_static_splits.format_report(result),
        data={
            "accuracy": {"S1": s1, "S2": s2, "S3": s3},
            "gate": {
                "s1_above": 0.9,
                "s3_below": 0.8,
                "passed": s1 > 0.9 and s1 > s2 > s3 and s3 < 0.8,
            },
        },
    )
    assert s1 > 0.9, "S1 (same positions) should be close to perfect"
    assert s1 > s2 > s3, "accuracy must degrade from S1 to S3"
    assert s3 < 0.8, "S3 (disjoint positions) must be clearly degraded"
