"""Benchmark regenerating Fig. 16: DeepCSI vs. offset-corrected input.

Paper observation: applying the CSI phase-cleaning algorithm before
classification removes part of the hardware fingerprint, so the raw-input
DeepCSI outperforms the cleaned variant (98.02 % vs 83.10 % on S1).
"""

from repro.experiments import fig16_offset_correction


def test_fig16_offset_correction(benchmark, profile, record):
    result = benchmark.pedantic(
        lambda: fig16_offset_correction.run(profile), rounds=1, iterations=1
    )
    record(
        "fig16_offset_correction",
        fig16_offset_correction.format_report(result),
        data={
            "raw_accuracy": {
                name: result.raw[name].accuracy for name in result.raw
            },
            "corrected_accuracy": {
                name: result.corrected[name].accuracy for name in result.corrected
            },
            "accuracy_gap": {
                name: result.accuracy_gap(name) for name in result.raw
            },
        },
    )

    # Raw DeepCSI wins on every split; the margin is the reproduction target,
    # not its absolute value.
    for split_name in result.raw:
        assert result.accuracy_gap(split_name) > -0.02, (
            f"{split_name}: offset correction should not beat raw DeepCSI"
        )
    # On at least one split the gap is clearly positive.
    assert max(result.accuracy_gap(name) for name in result.raw) > 0.02
