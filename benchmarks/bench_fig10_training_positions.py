"""Benchmark regenerating Fig. 10: accuracy vs. number of training positions.

Paper observation: for every split the accuracy grows with the number of
beamformee positions included in the training set.
"""

from repro.experiments import fig10_training_positions


def test_fig10_training_positions(benchmark, profile, record):
    result = benchmark.pedantic(
        lambda: fig10_training_positions.run(profile), rounds=1, iterations=1
    )
    curves = {
        split: list(result.accuracies(split)) for split in ("S1", "S2", "S3")
    }
    record(
        "fig10_training_positions",
        fig10_training_positions.format_report(result),
        data={
            "accuracy_vs_positions": curves,
            "gate": {
                "s3_above_chance": 0.2,
                "passed": all(
                    curves[split][-1] > curves[split][0] for split in ("S1", "S2")
                )
                and max(curves["S3"]) > 0.2,
            },
        },
    )

    # Using every available position must beat using a single position on the
    # splits whose test positions are interleaved with (S1) or adjacent to
    # (S2) the training ones.  On the fully-disjoint S3 split the synthetic
    # channel substitution does not reproduce the paper's monotone trend (see
    # EXPERIMENTS.md), so S3 is only required to stay above chance.
    for split_name in ("S1", "S2"):
        accuracies = result.accuracies(split_name)
        assert accuracies[-1] > accuracies[0], (
            f"{split_name}: accuracy should improve with more training positions"
        )
    s3_accuracies = result.accuracies("S3")
    assert max(s3_accuracies) > 0.2, "S3 must stay above chance level"
