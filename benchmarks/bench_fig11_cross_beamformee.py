"""Benchmark regenerating Fig. 11: swapping the beamformee between train/test.

Paper values: 25.86 % and 25.02 % - the fingerprint learned from one
beamformee's feedback does not transfer to the other beamformee, because the
feedback carries the hardware of both ends of the link.  The reproduction
asserts the collapse with respect to the same-beamformee accuracy of Fig. 8.
"""

from repro.experiments import fig11_cross_beamformee


def test_fig11_cross_beamformee(benchmark, profile, record):
    result = benchmark.pedantic(
        lambda: fig11_cross_beamformee.run(profile), rounds=1, iterations=1
    )
    forward = result.accuracy("train bf1 / test bf2")
    backward = result.accuracy("train bf2 / test bf1")
    record(
        "fig11_cross_beamformee",
        fig11_cross_beamformee.format_report(result),
        data={
            "accuracy": {"train_bf1_test_bf2": forward, "train_bf2_test_bf1": backward},
            "gate": {
                "both_below": 0.5,
                "passed": forward < 0.5 and backward < 0.5,
            },
        },
    )
    # Far below the >90 % same-beamformee accuracy: the fingerprint does not
    # transfer across beamformees.
    assert forward < 0.5
    assert backward < 0.5
