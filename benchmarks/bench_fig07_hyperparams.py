"""Benchmark regenerating Fig. 7: hyper-parameter sweeps (layers / filters).

Paper observations: accuracy is nearly flat in the number of convolutional
layers and grows (with diminishing returns) with the number of filters, while
the parameter count increases.
"""

from repro.experiments import fig07_hyperparams


def test_fig07_hyperparameter_sweeps(benchmark, profile, record):
    result = benchmark.pedantic(
        lambda: fig07_hyperparams.run(profile), rounds=1, iterations=1
    )
    layer_accuracies = [p.test_accuracy for p in result.layer_sweep]
    filter_points = list(result.filter_sweep)
    params = [p.num_parameters for p in filter_points]
    record(
        "fig07_hyperparams",
        fig07_hyperparams.format_report(result),
        data={
            "layer_sweep_accuracy": layer_accuracies,
            "filter_sweep_accuracy": [p.test_accuracy for p in filter_points],
            "filter_sweep_parameters": params,
            "gate": {
                "min_layer_accuracy_above": 0.85,
                "passed": min(layer_accuracies) > 0.85
                and max(layer_accuracies) - min(layer_accuracies) < 0.15
                and filter_points[-1].test_accuracy
                >= filter_points[0].test_accuracy - 0.02
                and params == sorted(params),
            },
        },
    )

    # Fig. 7a shape: accuracy stays high regardless of the layer count.
    assert min(layer_accuracies) > 0.85
    assert max(layer_accuracies) - min(layer_accuracies) < 0.15

    # Fig. 7b shape: more filters never costs much accuracy and the largest
    # model is at least as good as the smallest one.
    assert filter_points[-1].test_accuracy >= filter_points[0].test_accuracy - 0.02
    # Parameter counts grow with the filter count.
    assert params == sorted(params)
