"""Benchmark regenerating Fig. 7: hyper-parameter sweeps (layers / filters).

Paper observations: accuracy is nearly flat in the number of convolutional
layers and grows (with diminishing returns) with the number of filters, while
the parameter count increases.
"""

from repro.experiments import fig07_hyperparams


def test_fig07_hyperparameter_sweeps(benchmark, profile, record):
    result = benchmark.pedantic(
        lambda: fig07_hyperparams.run(profile), rounds=1, iterations=1
    )
    record("fig07_hyperparams", fig07_hyperparams.format_report(result))

    # Fig. 7a shape: accuracy stays high regardless of the layer count.
    layer_accuracies = [p.test_accuracy for p in result.layer_sweep]
    assert min(layer_accuracies) > 0.85
    assert max(layer_accuracies) - min(layer_accuracies) < 0.15

    # Fig. 7b shape: more filters never costs much accuracy and the largest
    # model is at least as good as the smallest one.
    filter_points = list(result.filter_sweep)
    assert filter_points[-1].test_accuracy >= filter_points[0].test_accuracy - 0.02
    # Parameter counts grow with the filter count.
    params = [p.num_parameters for p in filter_points]
    assert params == sorted(params)
