"""Benchmark regenerating Fig. 17: identification under beamformer mobility.

Paper values: S4 full path = 82.56 %, S4 sub-paths = 41.15 %,
S5 (static -> mobile) = 20.50 %, S6 (mobile -> static) = 88.12 %.
"""

from repro.experiments import fig17_mobility


def test_fig17_mobility(benchmark, profile, record):
    result = benchmark.pedantic(
        lambda: fig17_mobility.run(profile), rounds=1, iterations=1
    )
    full_path = result.accuracy("S4 full path")
    sub_paths = result.accuracy("S4 sub-paths")
    static_to_mobile = result.accuracy("S5 static->mobile")
    mobile_to_static = result.accuracy("S6 mobile->static")
    record(
        "fig17_mobility",
        fig17_mobility.format_report(result),
        data={
            "accuracy": {
                "S4_full_path": full_path,
                "S4_sub_paths": sub_paths,
                "S5_static_to_mobile": static_to_mobile,
                "S6_mobile_to_static": mobile_to_static,
            },
            "gate": {
                "full_path_above": 0.7,
                "passed": full_path > 0.7
                and sub_paths < full_path
                and static_to_mobile < 0.6
                and mobile_to_static > 0.7,
            },
        },
    )

    # Training and testing on the same mobility path works.
    assert full_path > 0.7
    # Different sub-paths degrade the accuracy.
    assert sub_paths < full_path
    # Training on static traces only does not generalise to mobility.
    assert static_to_mobile < 0.6
    assert static_to_mobile < mobile_to_static
    # Training on mobility traces generalises back to static conditions.
    assert mobile_to_static > 0.7
