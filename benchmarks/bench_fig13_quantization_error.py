"""Benchmark regenerating Fig. 13: PDFs of the V~ quantisation error.

Paper observations: (i) the error of the second spatial stream exceeds the
error of the first because Algorithm 1 is recursive, and (ii) the finer
(b_psi = 7, b_phi = 9) codebook shrinks the error by roughly a factor of
four with respect to (5, 7).
"""

import numpy as np

from repro.experiments import fig13_quantization_error


def test_fig13_quantization_error(benchmark, profile, record):
    result = benchmark.pedantic(
        lambda: fig13_quantization_error.run(profile), rounds=1, iterations=1
    )
    fine = result.mean_error(7, 9)
    coarse = result.mean_error(5, 7)
    record(
        "fig13_quantization_error",
        fig13_quantization_error.format_report(result),
        data={
            "mean_error_fine_7_9": fine.tolist(),
            "mean_error_coarse_5_7": coarse.tolist(),
            "coarse_to_fine_ratio": float(np.mean(coarse / fine)),
        },
    )

    # Coarser quantisation increases the error for every (antenna, stream).
    assert np.all(coarse > fine)
    # The coarse/fine ratio is of the order of the step ratio (4x).
    assert 2.0 < float(np.mean(coarse / fine)) < 8.0
    # Second-stream entries are reconstructed less accurately than
    # first-stream entries (averaged over the non-reference antennas).
    assert fine[:2, 1].mean() > fine[:2, 0].mean()
    assert coarse[:2, 1].mean() > coarse[:2, 0].mean()
