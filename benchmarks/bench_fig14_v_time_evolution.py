"""Benchmark regenerating Fig. 14: time evolution of |V~| in static conditions.

Paper observation: the second spatial stream is visibly noisier over time
(quantisation error) while the matrix structure is stable across soundings.
"""

from repro.experiments import fig14_v_time_evolution


def test_fig14_v_time_evolution(benchmark, profile, record):
    result = benchmark.pedantic(
        lambda: fig14_v_time_evolution.run(profile), rounds=1, iterations=1
    )
    record(
        "fig14_v_time_evolution",
        fig14_v_time_evolution.format_report(result),
        data={
            "temporal_std": result.temporal_std.tolist(),
            "temporal_correlation": result.temporal_correlation.tolist(),
        },
    )

    # One panel per (antenna, stream) pair, as in the paper's 3 x 2 grid.
    assert set(result.magnitude_maps) == {(a, s) for a in range(3) for s in range(2)}

    # Stream 2 fluctuates more over time than stream 1.
    assert result.temporal_std[:, 1].mean() > result.temporal_std[:, 0].mean()

    # The first-stream structure is positively correlated across consecutive
    # soundings (static conditions).
    assert result.temporal_correlation[:, 0].mean() > 0.0
