"""Throughput of the batched inference engine vs the per-frame loop.

Acceptance gates of the streaming engine:

* classifying ``V~`` matrices in micro-batches of 64 through
  :class:`repro.core.engine.InferenceEngine` must be at least 5x faster
  (frames/sec) than calling ``DeepCsiClassifier.predict_matrix`` once per
  frame,
* the ``fp32`` and ``int8`` compute backends must each deliver at least 2x
  the frames/sec of the fp64 batched engine measured in the same run, and
* the ``int8`` backend must stay within 1% of the fp64 accuracy on the
  Table-I S1 split (``bench_int8_accuracy_table1``).

The default shapes are a realistic observer workload (the paper's 80 MHz
sounding geometry with the usual stride-4 sub-carrier selection).  Set
``REPRO_BENCH_SMOKE=1`` to shrink everything for a CI smoke run.

Run directly with::

    PYTHONPATH=src python -m pytest -q -s benchmarks/bench_inference_throughput.py
"""

import copy
import os
import time

import numpy as np
import pytest

from repro.core.classifier import ClassifierConfig, DeepCsiClassifier
from repro.core.engine import InferenceEngine
from repro.core.model import DeepCsiModelConfig
from repro.datasets.containers import FeedbackSample
from repro.datasets.features import FeatureConfig, strided_subcarriers
from repro.datasets.splits import D1_SPLITS, d1_split
from repro.experiments.common import cached_dataset_d1, default_feature_config
from repro.nn.training import TrainingConfig

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Workload geometry: (K, M, N_SS), sub-carrier stride, frames to classify.
NUM_SUBCARRIERS = 32 if SMOKE else 234
STRIDE = 4
NUM_TX = 3
NUM_STREAMS = 2
NUM_FRAMES = 128 if SMOKE else 512
BATCH_SIZE = 64
REPEATS = 3

BENCH_MODEL = DeepCsiModelConfig(
    num_filters=16,
    kernel_widths=(7, 5),
    pool_width=2,
    dense_units=(32,),
    dropout_retain=(0.8,),
    attention_kernel_width=3,
)


def _random_v_batch(rng, batch, num_subcarriers, num_tx, num_streams):
    """Random matrices with orthonormal columns, shape (B, K, M, N_SS)."""
    raw = rng.standard_normal(
        (batch, num_subcarriers, num_tx, num_tx)
    ) + 1j * rng.standard_normal((batch, num_subcarriers, num_tx, num_tx))
    q, _ = np.linalg.qr(raw)
    return q[..., :num_streams]


@pytest.fixture(scope="module")
def trained_classifier():
    """A tiny classifier trained on synthetic V~ data (3 fake modules)."""
    rng = np.random.default_rng(7)
    samples = []
    for module_id in range(3):
        v_batch = _random_v_batch(rng, 24, NUM_SUBCARRIERS, NUM_TX, NUM_STREAMS)
        # Give each fake module a distinguishable bias so training converges.
        v_batch = v_batch + 0.1 * (module_id + 1)
        samples.extend(
            FeedbackSample(v_tilde=v, module_id=module_id, beamformee_id=1)
            for v in v_batch
        )
    classifier = DeepCsiClassifier(
        ClassifierConfig(
            num_classes=3,
            feature=FeatureConfig(
                stream_indices=(0,),
                subcarrier_positions=strided_subcarriers(NUM_SUBCARRIERS, STRIDE),
            ),
            model=BENCH_MODEL,
            training=TrainingConfig(
                epochs=2, batch_size=16, early_stopping_patience=None
            ),
        )
    )
    classifier.fit(samples)
    return classifier


@pytest.fixture(scope="module")
def frame_stream():
    rng = np.random.default_rng(11)
    return list(
        _random_v_batch(rng, NUM_FRAMES, NUM_SUBCARRIERS, NUM_TX, NUM_STREAMS)
    )


def _best_of(repeats, fn):
    """Best wall-clock of ``repeats`` runs (least noisy point estimate)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_batched_engine_is_at_least_5x_faster(
    trained_classifier, frame_stream, record
):
    """The tentpole acceptance criterion: >= 5x frames/sec at batch 64."""

    def per_frame():
        return [trained_classifier.predict_matrix(v) for v in frame_stream]

    def batched():
        engine = InferenceEngine(trained_classifier, batch_size=BATCH_SIZE)
        return engine.drain(frame_stream)

    scalar_seconds, scalar_results = _best_of(REPEATS, per_frame)
    batched_seconds, batched_results = _best_of(REPEATS, batched)

    assert len(batched_results) == len(scalar_results) == NUM_FRAMES
    for (module_id, _), result in zip(scalar_results, batched_results):
        assert result.predicted_module_id == module_id

    scalar_fps = NUM_FRAMES / scalar_seconds
    batched_fps = NUM_FRAMES / batched_seconds
    speedup = batched_fps / scalar_fps
    record(
        "bench_inference_throughput",
        "\n".join(
            [
                "Batched streaming inference engine vs per-frame loop",
                f"  workload: {NUM_FRAMES} frames, "
                f"(K, M, N_SS) = ({NUM_SUBCARRIERS}, {NUM_TX}, {NUM_STREAMS}), "
                f"stride {STRIDE}, batch size {BATCH_SIZE}"
                f"{' [smoke]' if SMOKE else ''}",
                f"  per-frame loop:  {scalar_fps:10.1f} frames/s "
                f"({1000.0 * scalar_seconds / NUM_FRAMES:.3f} ms/frame)",
                f"  batched engine:  {batched_fps:10.1f} frames/s "
                f"({1000.0 * batched_seconds / NUM_FRAMES:.3f} ms/frame)",
                f"  speedup:         {speedup:10.2f}x",
            ]
        ),
        data={
            "smoke": SMOKE,
            "num_frames": NUM_FRAMES,
            "batch_size": BATCH_SIZE,
            "frames_per_second": {
                "per_frame_loop": scalar_fps,
                "batched_engine": batched_fps,
            },
            "speedup_vs_per_frame": speedup,
            "gate": {"threshold": 5.0, "enforced": True, "passed": speedup >= 5.0},
        },
    )
    assert speedup >= 5.0, (
        f"batched engine is only {speedup:.2f}x faster than the per-frame "
        f"loop (required: >= 5x)"
    )


def _engine_fps(classifier, frame_stream):
    """Best-of frames/sec of one engine drain (arena warm-up excluded)."""
    warmup = InferenceEngine(classifier, batch_size=BATCH_SIZE)
    results = warmup.drain(frame_stream)

    def drain():
        engine = InferenceEngine(classifier, batch_size=BATCH_SIZE)
        return engine.drain(frame_stream)

    seconds, results = _best_of(REPEATS, drain)
    return len(frame_stream) / seconds, results


def _agreement(reference, results):
    return float(
        np.mean(
            [
                a.predicted_module_id == b.predicted_module_id
                for a, b in zip(reference, results)
            ]
        )
    )


def test_compute_backends_are_at_least_2x_faster(
    trained_classifier, frame_stream, record
):
    """fp32 and int8 backends: >= 2x the fp64 batched-engine frames/sec."""
    fp64_fps, fp64_results = _engine_fps(trained_classifier, frame_stream)

    fp32_classifier = copy.deepcopy(trained_classifier)
    fp32_classifier.set_compute("fp32")
    fp32_fps, fp32_results = _engine_fps(fp32_classifier, frame_stream)

    int8_classifier = copy.deepcopy(trained_classifier)
    int8_classifier.set_compute(
        "int8", calibration=np.stack(frame_stream[:BATCH_SIZE])
    )
    int8_fps, int8_results = _engine_fps(int8_classifier, frame_stream)

    fp32_speedup = fp32_fps / fp64_fps
    int8_speedup = int8_fps / fp64_fps
    fp32_agreement = _agreement(fp64_results, fp32_results)
    int8_agreement = _agreement(fp64_results, int8_results)

    def row(name, fps, speedup, agreement):
        return (
            f"  {name:<14s} {fps:10.1f} frames/s   {speedup:5.2f}x vs fp64   "
            f"prediction agreement {100.0 * agreement:6.2f}%"
        )

    record(
        "bench_compute_backends",
        "\n".join(
            [
                "Compute backends vs the fp64 batched engine (same run)",
                f"  workload: {NUM_FRAMES} frames, "
                f"(K, M, N_SS) = ({NUM_SUBCARRIERS}, {NUM_TX}, {NUM_STREAMS}), "
                f"stride {STRIDE}, batch size {BATCH_SIZE}"
                f"{' [smoke]' if SMOKE else ''}",
                row("fp64 engine:", fp64_fps, 1.0, 1.0),
                row("fp32 backend:", fp32_fps, fp32_speedup, fp32_agreement),
                row("int8 backend:", int8_fps, int8_speedup, int8_agreement),
            ]
        ),
        data={
            "smoke": SMOKE,
            "num_frames": NUM_FRAMES,
            "batch_size": BATCH_SIZE,
            "frames_per_second": {
                "fp64_engine": fp64_fps,
                "fp32_backend": fp32_fps,
                "int8_backend": int8_fps,
            },
            "speedup_vs_fp64": {"fp32": fp32_speedup, "int8": int8_speedup},
            "prediction_agreement_vs_fp64": {
                "fp32": fp32_agreement,
                "int8": int8_agreement,
            },
            "gate": {
                "threshold": 2.0,
                # The 2x gate is defined against the realistic full-size
                # workload; the tiny smoke shapes are dominated by per-batch
                # overhead shared by every backend, so smoke runs only prove
                # the machinery and record the (informational) speedups.
                "enforced": not SMOKE,
                "passed": fp32_speedup >= 2.0 and int8_speedup >= 2.0,
            },
        },
    )
    if not SMOKE:
        assert fp32_speedup >= 2.0, (
            f"fp32 backend is only {fp32_speedup:.2f}x faster than the fp64 "
            f"engine (required: >= 2x)"
        )
        assert int8_speedup >= 2.0, (
            f"int8 backend is only {int8_speedup:.2f}x faster than the fp64 "
            f"engine (required: >= 2x)"
        )


def test_int8_accuracy_within_1pct_of_fp64_on_table1(profile, record):
    """Post-training int8 quantisation: <= 1% accuracy drop on Table I S1."""
    if SMOKE:
        # A scaled-down profile keeps CI fast; the distinct name keeps the
        # cached dataset separate from the full-profile benchmarks.
        profile = profile.scaled(
            name=f"{profile.name}-compute-smoke",
            num_modules=3,
            d1_soundings_per_trace=6,
            subcarrier_stride=16,
            model=BENCH_MODEL,
            epochs=2,
            early_stopping_patience=None,
        )
    dataset = cached_dataset_d1(profile)
    train, test = d1_split(dataset, D1_SPLITS["S1"], beamformee_id=1)
    classifier = DeepCsiClassifier(
        ClassifierConfig(
            num_classes=profile.num_modules,
            feature=default_feature_config(profile),
            model=profile.model,
            training=profile.training_config(seed=0),
            learning_rate=profile.learning_rate,
            seed=0,
        )
    )
    classifier.fit(train)
    fp64_accuracy = classifier.evaluate(test, label="fp64").accuracy

    int8_classifier = copy.deepcopy(classifier)
    int8_classifier.set_compute("int8", calibration=train)
    int8_accuracy = int8_classifier.evaluate(test, label="int8").accuracy

    delta = fp64_accuracy - int8_accuracy
    # 1% of accuracy, but never tighter than three test samples (tiny smoke
    # test sets would otherwise gate on a single borderline frame).
    threshold = max(0.01, 3.0 / len(test))
    record(
        "bench_int8_accuracy_table1",
        "\n".join(
            [
                "Int8 post-training quantisation accuracy on Table I S1 "
                f"({profile.num_modules} modules, beamformee 1)"
                f"{' [smoke]' if SMOKE else ''}",
                f"  train / test samples:  {len(train)} / {len(test)}",
                f"  fp64 accuracy:         {100.0 * fp64_accuracy:6.2f}%",
                f"  int8 accuracy:         {100.0 * int8_accuracy:6.2f}%",
                f"  delta:                 {100.0 * delta:+6.2f}% "
                f"(allowed: <= {100.0 * threshold:.2f}%)",
            ]
        ),
        data={
            "smoke": SMOKE,
            "split": "S1",
            "num_modules": profile.num_modules,
            "num_train": len(train),
            "num_test": len(test),
            "accuracy": {"fp64": fp64_accuracy, "int8": int8_accuracy},
            "accuracy_delta": delta,
            "gate": {
                "threshold": threshold,
                "enforced": True,
                "passed": delta <= threshold,
            },
        },
    )
    assert delta <= threshold, (
        f"int8 accuracy dropped {100.0 * delta:.2f}% below fp64 on Table I "
        f"S1 (allowed: {100.0 * threshold:.2f}%)"
    )


def test_codeword_fast_path_end_to_end(trained_classifier, frame_stream, record):
    """End-to-end frames/s of the codeword-native engine paths.

    Baseline is the pre-fast-path equivalent pipeline (stack codewords,
    dequantize to float64 angles, rebuild V~, extract, classify) run over
    the same micro-batches; ``exact`` must reproduce its predictions
    bitwise.  Recorded for the throughput ledger; the 2x preprocessing gate
    itself lives in ``bench_feedback_throughput.py``.
    """
    from repro.feedback.givens import compress_v_matrix, reconstruct_v_matrices
    from repro.feedback.quantization import (
        QuantizationConfig,
        dequantize_angles_batch,
        quantize_angles,
        stack_quantized_angles,
    )

    config = QuantizationConfig()
    quantized = [
        quantize_angles(compress_v_matrix(v), config) for v in frame_stream
    ]

    def baseline():
        predictions = []
        for start in range(0, len(quantized), BATCH_SIZE):
            chunk = quantized[start : start + BATCH_SIZE]
            q_phi, q_psi, chunk_config, num_tx, num_streams = stack_quantized_angles(
                chunk
            )
            phi, psi = dequantize_angles_batch(q_phi, q_psi, chunk_config)
            v_batch = reconstruct_v_matrices(phi, psi, num_tx, num_streams)
            ids, confidences = trained_classifier.predict_matrices(v_batch)
            predictions.extend(zip(ids, confidences))
        return predictions

    def engine_drain(precision):
        engine = InferenceEngine(
            trained_classifier, batch_size=BATCH_SIZE, precision=precision
        )
        return engine.drain(quantized)

    # Warm-up (arena growth, LUT construction) before the timed runs.
    baseline_predictions = baseline()
    engine_drain("exact")
    engine_drain("fast")

    baseline_seconds, _ = _best_of(REPEATS, baseline)
    exact_seconds, exact_results = _best_of(REPEATS, lambda: engine_drain("exact"))
    fast_seconds, fast_results = _best_of(REPEATS, lambda: engine_drain("fast"))

    assert len(exact_results) == NUM_FRAMES
    for (module_id, confidence), result in zip(baseline_predictions, exact_results):
        assert result.predicted_module_id == int(module_id)
        assert result.confidence == float(confidence)
    fast_agreement = _agreement(exact_results, fast_results)

    baseline_fps = NUM_FRAMES / baseline_seconds
    exact_fps = NUM_FRAMES / exact_seconds
    fast_fps = NUM_FRAMES / fast_seconds
    record(
        "bench_codeword_engine_end_to_end",
        "\n".join(
            [
                "End-to-end engine throughput on quantised codeword streams",
                f"  workload: {NUM_FRAMES} frames, "
                f"(K, M, N_SS) = ({NUM_SUBCARRIERS}, {NUM_TX}, {NUM_STREAMS}), "
                f"stride {STRIDE}, batch size {BATCH_SIZE}"
                f"{' [smoke]' if SMOKE else ''}",
                f"  legacy pipeline:        {baseline_fps:10.1f} frames/s",
                f"  engine precision=exact: {exact_fps:10.1f} frames/s "
                f"({exact_fps / baseline_fps:.2f}x, bitwise predictions)",
                f"  engine precision=fast:  {fast_fps:10.1f} frames/s "
                f"({fast_fps / baseline_fps:.2f}x, "
                f"agreement {100.0 * fast_agreement:.2f}%)",
            ]
        ),
        data={
            "smoke": SMOKE,
            "num_frames": NUM_FRAMES,
            "batch_size": BATCH_SIZE,
            "frames_per_second": {
                "legacy_pipeline": baseline_fps,
                "engine_exact": exact_fps,
                "engine_fast": fast_fps,
            },
            "speedup_vs_legacy": {
                "exact": exact_fps / baseline_fps,
                "fast": fast_fps / baseline_fps,
            },
            "fast_prediction_agreement_vs_exact": fast_agreement,
            "gate": {
                "threshold": 1.0,
                # Informational: the enforced 2x preprocessing gate lives in
                # bench_feedback_throughput.py where preprocessing is timed
                # in isolation (here the CNN forward dominates).
                "enforced": False,
                "passed": exact_fps >= baseline_fps,
            },
        },
    )


def test_partial_batches_still_beat_per_frame(trained_classifier, frame_stream):
    """Latency-bounded micro-batches (batch 16) must still win clearly."""
    subset = frame_stream[: min(NUM_FRAMES, 128)]

    def per_frame():
        return [trained_classifier.predict_matrix(v) for v in subset]

    def batched():
        engine = InferenceEngine(
            trained_classifier, batch_size=BATCH_SIZE, max_latency_frames=16
        )
        return engine.drain(subset)

    scalar_seconds, _ = _best_of(REPEATS, per_frame)
    batched_seconds, results = _best_of(REPEATS, batched)
    assert len(results) == len(subset)
    assert batched_seconds < scalar_seconds
