"""Throughput of the batched inference engine vs the per-frame loop.

The acceptance gate of the streaming engine: classifying ``V~`` matrices in
micro-batches of 64 through :class:`repro.core.engine.InferenceEngine` must
be at least 5x faster (frames/sec) than calling
``DeepCsiClassifier.predict_matrix`` once per frame.

The default shapes are a realistic observer workload (the paper's 80 MHz
sounding geometry with the usual stride-4 sub-carrier selection).  Set
``REPRO_BENCH_SMOKE=1`` to shrink everything for a CI smoke run.

Run directly with::

    PYTHONPATH=src python -m pytest -q -s benchmarks/bench_inference_throughput.py
"""

import os
import time

import numpy as np
import pytest

from repro.core.classifier import ClassifierConfig, DeepCsiClassifier
from repro.core.engine import InferenceEngine
from repro.core.model import DeepCsiModelConfig
from repro.datasets.containers import FeedbackSample
from repro.datasets.features import FeatureConfig, strided_subcarriers
from repro.nn.training import TrainingConfig

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Workload geometry: (K, M, N_SS), sub-carrier stride, frames to classify.
NUM_SUBCARRIERS = 32 if SMOKE else 234
STRIDE = 4
NUM_TX = 3
NUM_STREAMS = 2
NUM_FRAMES = 128 if SMOKE else 512
BATCH_SIZE = 64
REPEATS = 3

BENCH_MODEL = DeepCsiModelConfig(
    num_filters=16,
    kernel_widths=(7, 5),
    pool_width=2,
    dense_units=(32,),
    dropout_retain=(0.8,),
    attention_kernel_width=3,
)


def _random_v_batch(rng, batch, num_subcarriers, num_tx, num_streams):
    """Random matrices with orthonormal columns, shape (B, K, M, N_SS)."""
    raw = rng.standard_normal(
        (batch, num_subcarriers, num_tx, num_tx)
    ) + 1j * rng.standard_normal((batch, num_subcarriers, num_tx, num_tx))
    q, _ = np.linalg.qr(raw)
    return q[..., :num_streams]


@pytest.fixture(scope="module")
def trained_classifier():
    """A tiny classifier trained on synthetic V~ data (3 fake modules)."""
    rng = np.random.default_rng(7)
    samples = []
    for module_id in range(3):
        v_batch = _random_v_batch(rng, 24, NUM_SUBCARRIERS, NUM_TX, NUM_STREAMS)
        # Give each fake module a distinguishable bias so training converges.
        v_batch = v_batch + 0.1 * (module_id + 1)
        samples.extend(
            FeedbackSample(v_tilde=v, module_id=module_id, beamformee_id=1)
            for v in v_batch
        )
    classifier = DeepCsiClassifier(
        ClassifierConfig(
            num_classes=3,
            feature=FeatureConfig(
                stream_indices=(0,),
                subcarrier_positions=strided_subcarriers(NUM_SUBCARRIERS, STRIDE),
            ),
            model=BENCH_MODEL,
            training=TrainingConfig(
                epochs=2, batch_size=16, early_stopping_patience=None
            ),
        )
    )
    classifier.fit(samples)
    return classifier


@pytest.fixture(scope="module")
def frame_stream():
    rng = np.random.default_rng(11)
    return list(
        _random_v_batch(rng, NUM_FRAMES, NUM_SUBCARRIERS, NUM_TX, NUM_STREAMS)
    )


def _best_of(repeats, fn):
    """Best wall-clock of ``repeats`` runs (least noisy point estimate)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_batched_engine_is_at_least_5x_faster(
    trained_classifier, frame_stream, record
):
    """The tentpole acceptance criterion: >= 5x frames/sec at batch 64."""

    def per_frame():
        return [trained_classifier.predict_matrix(v) for v in frame_stream]

    def batched():
        engine = InferenceEngine(trained_classifier, batch_size=BATCH_SIZE)
        return engine.drain(frame_stream)

    scalar_seconds, scalar_results = _best_of(REPEATS, per_frame)
    batched_seconds, batched_results = _best_of(REPEATS, batched)

    assert len(batched_results) == len(scalar_results) == NUM_FRAMES
    for (module_id, _), result in zip(scalar_results, batched_results):
        assert result.predicted_module_id == module_id

    scalar_fps = NUM_FRAMES / scalar_seconds
    batched_fps = NUM_FRAMES / batched_seconds
    speedup = batched_fps / scalar_fps
    record(
        "bench_inference_throughput",
        "\n".join(
            [
                "Batched streaming inference engine vs per-frame loop",
                f"  workload: {NUM_FRAMES} frames, "
                f"(K, M, N_SS) = ({NUM_SUBCARRIERS}, {NUM_TX}, {NUM_STREAMS}), "
                f"stride {STRIDE}, batch size {BATCH_SIZE}"
                f"{' [smoke]' if SMOKE else ''}",
                f"  per-frame loop:  {scalar_fps:10.1f} frames/s "
                f"({1000.0 * scalar_seconds / NUM_FRAMES:.3f} ms/frame)",
                f"  batched engine:  {batched_fps:10.1f} frames/s "
                f"({1000.0 * batched_seconds / NUM_FRAMES:.3f} ms/frame)",
                f"  speedup:         {speedup:10.2f}x",
            ]
        ),
        data={
            "smoke": SMOKE,
            "num_frames": NUM_FRAMES,
            "batch_size": BATCH_SIZE,
            "frames_per_second": {
                "per_frame_loop": scalar_fps,
                "batched_engine": batched_fps,
            },
            "speedup_vs_per_frame": speedup,
            "gate": {"threshold": 5.0, "enforced": True, "passed": speedup >= 5.0},
        },
    )
    assert speedup >= 5.0, (
        f"batched engine is only {speedup:.2f}x faster than the per-frame "
        f"loop (required: >= 5x)"
    )


def test_partial_batches_still_beat_per_frame(trained_classifier, frame_stream):
    """Latency-bounded micro-batches (batch 16) must still win clearly."""
    subset = frame_stream[: min(NUM_FRAMES, 128)]

    def per_frame():
        return [trained_classifier.predict_matrix(v) for v in subset]

    def batched():
        engine = InferenceEngine(
            trained_classifier, batch_size=BATCH_SIZE, max_latency_frames=16
        )
        return engine.drain(subset)

    scalar_seconds, _ = _best_of(REPEATS, per_frame)
    batched_seconds, results = _best_of(REPEATS, batched)
    assert len(results) == len(subset)
    assert batched_seconds < scalar_seconds
