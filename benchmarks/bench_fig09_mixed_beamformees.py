"""Benchmark regenerating Fig. 9: S1/S2/S3 with both beamformees mixed.

Paper values: S1 = 97.62 %, S2 = 77.38 %, S3 = 47.28 %.
"""

from repro.experiments import fig09_mixed_beamformees


def test_fig09_mixed_beamformees(benchmark, profile, record):
    result = benchmark.pedantic(
        lambda: fig09_mixed_beamformees.run(profile), rounds=1, iterations=1
    )
    s1, s2, s3 = (result.accuracy(name) for name in ("S1", "S2", "S3"))
    record(
        "fig09_mixed_beamformees",
        fig09_mixed_beamformees.format_report(result),
        data={
            "accuracy": {"S1": s1, "S2": s2, "S3": s3},
            "gate": {"s1_above": 0.9, "passed": s1 > 0.9 and s1 > s2 > s3},
        },
    )
    assert s1 > 0.9
    assert s1 > s2 > s3
