"""Shared fixtures and helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one table/figure of the paper's evaluation
section through :mod:`repro.experiments` and

* prints the same rows/series the paper reports (run with ``-s`` to see them
  inline),
* appends the report to ``benchmarks/results/<name>.txt`` so the numbers can
  be collected into ``EXPERIMENTS.md``, and
* stores a machine-readable ``benchmarks/results/<name>.json`` next to it
  when the benchmark passes structured ``data`` (throughput, speedups, gate
  thresholds, pass/fail, worker/backend configuration).

The profile is selected with the ``REPRO_PROFILE`` environment variable
(``fast`` by default, ``full`` for paper-scale runs).
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path

import numpy as np
import pytest

# Allow "from benchmarks.common import ..." style imports when pytest is
# invoked from the repository root.
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.experiments.profiles import get_profile  # noqa: E402

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def profile():
    """The experiment profile used by every benchmark in this session."""
    return get_profile()


@pytest.fixture(scope="session")
def record():
    """Callable that prints a report and stores it under ``benchmarks/results``.

    ``record(name, text)`` writes ``results/<name>.txt``; passing ``data``
    additionally writes ``results/<name>.json`` with the same payload plus
    the rendered report, so scripts can consume the gate results without
    parsing text.
    """

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)

    smoke = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

    # Host metadata stored with every JSON artifact so cross-run trajectories
    # (different machines, interpreter or BLAS versions) stay comparable.
    host = {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }

    def _record(name: str, text: str, data: dict | None = None) -> None:
        print()
        print(text)
        if smoke:
            # Smoke shapes (CI) prove the gate logic, not the numbers; never
            # let them overwrite the committed full-workload artifacts that
            # README/EXPERIMENTS cite.
            return
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        if data is not None:
            payload = {"benchmark": name, "host": host, **data, "report": text}
            (RESULTS_DIR / f"{name}.json").write_text(
                json.dumps(payload, indent=2, sort_keys=False) + "\n"
            )

    return _record
