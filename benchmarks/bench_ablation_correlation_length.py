"""Ablation: spatial correlation length of the synthetic channel.

DESIGN.md substitutes the paper's over-the-air channel with a
spatially-correlated tapped-delay model whose correlation length is the knob
that controls how quickly the channel decorrelates as the beamformees move.
This ablation regenerates dataset D1 with a short and a long correlation
length and re-evaluates the S3 split (train on positions 1-5, test on 6-9):
a longer correlation length makes the unseen positions look more like the
training ones, so the S3 accuracy must not decrease.
"""

from dataclasses import replace

from repro.datasets.generator import generate_dataset_d1
from repro.datasets.splits import D1_SPLITS, d1_split
from repro.experiments.common import (
    default_feature_config,
    train_and_evaluate,
)

#: Correlation lengths compared by the ablation [m].
SHORT_CORRELATION_M = 0.15
LONG_CORRELATION_M = 0.45


def test_ablation_correlation_length(benchmark, profile, record):
    """S3 accuracy with the default (short) vs. a long correlation length."""

    def run():
        feature_config = default_feature_config(profile)
        results = {}
        for label, length in (
            ("short", SHORT_CORRELATION_M),
            ("long", LONG_CORRELATION_M),
        ):
            config = replace(profile.d1_config(), correlation_length_m=length)
            dataset = generate_dataset_d1(config)
            train, test = d1_split(dataset, D1_SPLITS["S3"], beamformee_id=1)
            results[label] = train_and_evaluate(
                train,
                test,
                profile,
                feature_config=feature_config,
                label=f"S3 / correlation {length:.2f} m",
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report = "\n".join(
        [
            "Ablation - channel spatial correlation length (split S3, beamformee 1)",
            f"  L = {SHORT_CORRELATION_M:.2f} m (default): "
            f"{100.0 * results['short'].accuracy:6.2f}%",
            f"  L = {LONG_CORRELATION_M:.2f} m:           "
            f"{100.0 * results['long'].accuracy:6.2f}%",
            "expected shape: a longer correlation length makes unseen positions "
            "easier, so the S3 accuracy must not decrease",
        ]
    )
    record(
        "ablation_correlation_length",
        report,
        data={
            "accuracy": {
                f"short_{SHORT_CORRELATION_M:.2f}m": results["short"].accuracy,
                f"long_{LONG_CORRELATION_M:.2f}m": results["long"].accuracy,
            },
        },
    )

    assert results["long"].accuracy >= results["short"].accuracy - 0.05, (
        "a longer channel correlation length must not make the unseen-position "
        "split harder"
    )
