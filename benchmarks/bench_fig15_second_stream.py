"""Benchmark regenerating Fig. 15: classification from the second stream.

Paper values: S1 = 97.03 %, S2 = 13.32 %, S3 = 5.63 %.  The reproduction
asserts that S1 remains high while S2/S3 collapse with respect to the
stream-0 results (the stream-1 input carries a larger quantisation error).
"""

from repro.experiments import fig15_second_stream


def test_fig15_second_stream(benchmark, profile, record):
    result = benchmark.pedantic(
        lambda: fig15_second_stream.run(profile), rounds=1, iterations=1
    )
    s1, s2, s3 = (result.accuracy(name) for name in ("S1", "S2", "S3"))
    record(
        "fig15_second_stream",
        fig15_second_stream.format_report(result),
        data={
            "accuracy": {"S1": s1, "S2": s2, "S3": s3},
            "gate": {
                "s1_above": 0.85,
                "passed": s1 > 0.85
                and s2 < s1 - 0.2
                and s3 < s1 - 0.4
                and s3 <= s2 + 0.05,
            },
        },
    )
    # The paper's stream-1 S2/S3 collapse is larger (13 % / 6 %) than the
    # synthetic reproduction achieves; the shape asserted here is the
    # degradation ordering (see EXPERIMENTS.md for the measured gap).
    assert s1 > 0.85, "S1 can still be solved from the second stream"
    assert s2 < s1 - 0.2, "S2 must degrade relative to S1 on the second stream"
    assert s3 < s1 - 0.4, "S3 must collapse relative to S1 on the second stream"
    assert s3 <= s2 + 0.05
