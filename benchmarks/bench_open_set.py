"""Open-set authentication gates: impostor separability and hot-path cost.

Two acceptance gates of the always-on lifecycle tentpole:

* **Separability** -- on the seeded impostor scenario
  (:mod:`repro.datasets.adversarial`: unseen transmitters + spoofed enrolled
  feedback), the max-softmax open-set score must reach **AUROC >= 0.95**
  against the enrolled test traffic, with the FRR-calibrated threshold's
  operating point reported alongside.
* **Hot-path cost** -- scoring every frame's known-ness on the streaming
  engine reuses the classification forward pass, so the open-set engine must
  sustain at least **85%** of the closed-set engine's frames/sec on the same
  traffic (the "rejection is ~free" claim), while predicting identical
  module ids for every frame.

Set ``REPRO_BENCH_SMOKE=1`` to shrink the workload for a CI smoke run (both
gates stay enforced; the smoke shapes prove the gate logic end to end).

Run directly with::

    PYTHONPATH=src python -m pytest -q -s benchmarks/bench_open_set.py
"""

import os
import time

import pytest

from repro.core.classifier import ClassifierConfig, DeepCsiClassifier
from repro.core.engine import InferenceEngine
from repro.core.model import DeepCsiModelConfig
from repro.core.openset import (
    OpenSetAuthenticator,
    calibrate_threshold,
    evaluate_open_set,
)
from repro.datasets.adversarial import impostor_scenario
from repro.datasets.features import FeatureConfig
from repro.nn.training import TrainingConfig

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

NUM_ENROLLED = 3
NUM_UNSEEN = 2
NUM_PER_MODULE = 20 if SMOKE else 60
TARGET_FRR = 0.05
AUROC_GATE = 0.95
THROUGHPUT_RATIO_GATE = 0.85
BATCH_SIZE = 32
REPEATS = 3
THROUGHPUT_ROUNDS = 4 if SMOKE else 16


@pytest.fixture(scope="module")
def scenario():
    """The seeded impostor scenario shared by both gates."""
    return impostor_scenario(
        num_enrolled=NUM_ENROLLED,
        num_unseen=NUM_UNSEEN,
        num_per_module=NUM_PER_MODULE,
        seed=0,
    )


@pytest.fixture(scope="module")
def classifier(scenario):
    """A tiny classifier trained on the scenario's enrolled traffic."""
    config = ClassifierConfig(
        num_classes=NUM_ENROLLED,
        feature=FeatureConfig(stream_indices=(0,)),
        model=DeepCsiModelConfig(
            num_filters=8,
            kernel_widths=(3,),
            pool_width=2,
            dense_units=(16,),
            dropout_retain=(1.0,),
            use_attention=False,
        ),
        training=TrainingConfig(
            epochs=25,
            batch_size=16,
            validation_split=0.0,
            early_stopping_patience=None,
        ),
        learning_rate=5e-3,
        seed=0,
    )
    model = DeepCsiClassifier(config)
    model.fit(scenario.enrolled_train)
    return model


def test_open_set_auroc_gate(scenario, classifier, record):
    """AUROC >= 0.95 separating enrolled traffic from impostors (seeded)."""
    authenticator = OpenSetAuthenticator(classifier, scoring="max_softmax")
    threshold = calibrate_threshold(
        authenticator, scenario.enrolled_train, target_false_reject_rate=TARGET_FRR
    )
    metrics = evaluate_open_set(
        authenticator, scenario.enrolled_test, scenario.impostors
    )
    passed = metrics.auroc >= AUROC_GATE

    lines = [
        "open-set separability on the impostor scenario "
        f"({NUM_ENROLLED} enrolled, {NUM_UNSEEN} unseen transmitters, "
        f"{NUM_PER_MODULE} frames/module{', smoke' if SMOKE else ''})",
        "  scoring rule        max_softmax",
        f"  threshold (FRR {TARGET_FRR:.0%})  {threshold:.6f}",
        f"  AUROC               {metrics.auroc:.4f}  (gate >= {AUROC_GATE})",
        f"  false accept rate   {metrics.false_accept_rate:.4f}",
        f"  false reject rate   {metrics.false_reject_rate:.4f}",
        f"  known accuracy      {metrics.known_accuracy:.4f}",
        f"  gate                {'PASS' if passed else 'FAIL'}",
    ]
    record(
        "bench_open_set_auroc",
        "\n".join(lines),
        data={
            "num_enrolled": NUM_ENROLLED,
            "num_unseen": NUM_UNSEEN,
            "num_per_module": NUM_PER_MODULE,
            "scoring": "max_softmax",
            "threshold": threshold,
            "auroc": metrics.auroc,
            "false_accept_rate": metrics.false_accept_rate,
            "false_reject_rate": metrics.false_reject_rate,
            "known_accuracy": metrics.known_accuracy,
            "gate": {
                "threshold": AUROC_GATE,
                "enforced": True,
                "passed": passed,
            },
        },
    )
    assert passed, (
        f"open-set AUROC {metrics.auroc:.4f} is below the {AUROC_GATE} gate"
    )


def _serve(engine, frames):
    """Steady-state serving seconds of one engine over the frame stream."""
    engine.reset()
    started = time.perf_counter()
    for index, frame in enumerate(frames):
        engine.submit(frame, source=f"src:{index % 8}")
    engine.flush()
    return time.perf_counter() - started


def test_open_set_throughput_gate(scenario, classifier, record):
    """Open-set rejection costs <= 15% of closed-set engine throughput."""
    frames = [
        sample.v_tilde
        for sample in (scenario.enrolled_test + scenario.impostors)
    ] * THROUGHPUT_ROUNDS
    authenticator = OpenSetAuthenticator(classifier, scoring="max_softmax")
    calibrate_threshold(
        authenticator, scenario.enrolled_train, target_false_reject_rate=TARGET_FRR
    )
    closed = InferenceEngine(classifier, batch_size=BATCH_SIZE)
    opened = InferenceEngine(
        classifier, batch_size=BATCH_SIZE, open_set=authenticator
    )

    # Interleave the rounds so host drift hits both engines evenly.
    closed_best = opened_best = float("inf")
    for _ in range(REPEATS):
        closed_best = min(closed_best, _serve(closed, frames))
        opened_best = min(opened_best, _serve(opened, frames))

    # Identical module ids on every frame: the open-set path reuses the same
    # forward pass, it only adds the score/threshold comparison.
    closed.reset()
    opened.reset()
    one_round = frames[: len(frames) // THROUGHPUT_ROUNDS]
    closed_ids = [r.predicted_module_id for r in closed.drain(one_round)]
    opened_ids = [r.predicted_module_id for r in opened.drain(one_round)]
    assert closed_ids == opened_ids

    closed_fps = len(frames) / closed_best
    opened_fps = len(frames) / opened_best
    ratio = opened_fps / closed_fps
    rejection_rate = opened.stats.rejection_rate
    passed = ratio >= THROUGHPUT_RATIO_GATE

    lines = [
        "open-set engine throughput vs closed-set "
        f"({len(frames)} frames, batch {BATCH_SIZE}, best of {REPEATS}"
        f"{', smoke' if SMOKE else ''})",
        f"  closed-set          {closed_fps:,.0f} frames/s",
        f"  open-set            {opened_fps:,.0f} frames/s",
        f"  ratio               {ratio:.3f}  (gate >= {THROUGHPUT_RATIO_GATE})",
        f"  rejection rate      {rejection_rate:.3f}",
        f"  gate                {'PASS' if passed else 'FAIL'}",
    ]
    record(
        "bench_open_set_throughput",
        "\n".join(lines),
        data={
            "num_frames": len(frames),
            "batch_size": BATCH_SIZE,
            "repeats": REPEATS,
            "closed_set_fps": closed_fps,
            "open_set_fps": opened_fps,
            "ratio": ratio,
            "rejection_rate": rejection_rate,
            "gate": {
                "threshold": THROUGHPUT_RATIO_GATE,
                "enforced": True,
                "passed": passed,
            },
        },
    )
    assert passed, (
        f"open-set engine at {ratio:.3f}x of closed-set throughput, below "
        f"the {THROUGHPUT_RATIO_GATE} gate"
    )
