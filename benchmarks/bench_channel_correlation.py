"""Benchmark documenting the synthetic channel's spatial decorrelation.

Not a figure of the paper, but the quantitative justification of the channel
substitution recorded in DESIGN.md: the correlated fading model must
decorrelate smoothly over displacements comparable to the 10 cm beamformee
steps of dataset D1, so that adjacent positions share channel structure
(split S2 can interpolate) while distant positions do not (split S3 cannot).
"""

import numpy as np

from repro.datasets.generator import DatasetConfig
from repro.phy.fading import spatial_correlation
from repro.phy.geometry import BEAMFORMEE1_START


def test_channel_spatial_decorrelation(benchmark, profile, record):
    """Correlation of the diffuse channel gains versus RX displacement."""
    config = profile.d1_config()
    displacements = [0.0, 0.05, 0.10, 0.20, 0.40, 0.80]

    def run():
        channel = config.channel()
        return spatial_correlation(
            channel,
            BEAMFORMEE1_START,
            displacements,
            config.carrier_frequency_hz,
        )

    curve = benchmark.pedantic(run, rounds=3, iterations=1)

    lines = [
        "Synthetic channel - spatial correlation of the diffuse tap gains",
        f"  correlation length parameter: {config.correlation_length_m:.2f} m",
        f"  {'displacement':>14s} {'|correlation|':>14s}",
    ]
    for displacement, value in curve:
        lines.append(f"  {displacement:>12.2f} m {value:>14.3f}")
    lines.append(
        "expected shape: correlation ~1 at 0 m, still high at one 10 cm "
        "position step, low beyond ~3 correlation lengths"
    )
    report = "\n".join(lines)
    record(
        "channel_spatial_correlation",
        report,
        data={
            "correlation_length_m": config.correlation_length_m,
            "correlation_vs_displacement": {
                f"{displacement:.2f}": value for displacement, value in curve
            },
        },
    )

    values = dict(curve)
    assert np.isclose(values[0.0], 1.0, atol=1e-6)
    assert values[0.05] > 0.8, "half a D1 position step must stay strongly correlated"
    assert values[0.10] > 0.6, "adjacent D1 positions must stay correlated"
    # With only a handful of taps the empirical estimate has a noise floor of
    # roughly 1/sqrt(num_taps); assert the decay relative to the 10 cm value.
    assert values[0.40] < values[0.10] - 0.2, "distant positions must decorrelate"
