"""Link- and rot-checker for the repository documentation.

Three checks, all offline:

1. every relative markdown link in ``README.md`` / ``docs/*.md`` resolves to
   an existing file or directory;
2. every backticked repository path (a token containing ``/`` and ending in
   ``.py``/``.md``/``.txt``) in those documents exists;
3. ``docs/EXPERIMENTS.md`` mentions every ``src/repro/experiments/fig*.py``
   module and every ``benchmarks/bench_fig*.py`` gate, so adding a figure
   without documenting it fails CI.

Run from the repository root (CI does)::

    python scripts/check_doc_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` markdown links.
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)]+)\)")
#: Backticked tokens that look like repository paths.
PATH_PATTERN = re.compile(r"`([^`\s]+/[^`\s]+\.(?:py|md|txt))`")
#: Link schemes that are not file references.
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "#")


def _documents() -> list[Path]:
    return [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]


def _check_links(document: Path, errors: list[str]) -> None:
    text = document.read_text()
    for match in LINK_PATTERN.finditer(text):
        target = match.group(1).strip()
        if target.startswith(EXTERNAL_PREFIXES):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (document.parent / path).resolve()
        if not resolved.exists():
            errors.append(f"{document.relative_to(REPO_ROOT)}: broken link {target!r}")
    for match in PATH_PATTERN.finditer(text):
        token = match.group(1)
        if any(marker in token for marker in ("<", ">", "*", "…")):
            continue
        if not (REPO_ROOT / token).exists():
            errors.append(
                f"{document.relative_to(REPO_ROOT)}: dangling path reference "
                f"`{token}`"
            )


def _check_experiment_coverage(errors: list[str]) -> None:
    experiments_doc = REPO_ROOT / "docs" / "EXPERIMENTS.md"
    if not experiments_doc.exists():
        errors.append("docs/EXPERIMENTS.md is missing")
        return
    text = experiments_doc.read_text()
    required = sorted(
        str(path.relative_to(REPO_ROOT))
        for pattern in ("src/repro/experiments/fig*.py", "benchmarks/bench_fig*.py")
        for path in REPO_ROOT.glob(pattern)
    )
    for path in required:
        if path not in text:
            errors.append(f"docs/EXPERIMENTS.md: does not mention {path}")


def main() -> int:
    errors: list[str] = []
    for document in _documents():
        if not document.exists():
            errors.append(f"missing document: {document.relative_to(REPO_ROOT)}")
            continue
        _check_links(document, errors)
    _check_experiment_coverage(errors)
    if errors:
        for error in errors:
            print(f"error: {error}", file=sys.stderr)
        return 1
    documents = ", ".join(str(d.relative_to(REPO_ROOT)) for d in _documents())
    print(f"doc links ok: {documents}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
