"""Ad-hoc validation of the reproduction result shapes (fast profile)."""
import time

from repro.experiments import (
    fig08_static_splits,
    fig11_cross_beamformee,
    fig15_second_stream,
    fig16_offset_correction,
    fig17_mobility,
)
from repro.experiments.profiles import FAST_PROFILE


def main():
    for module in (
        fig08_static_splits,
        fig15_second_stream,
        fig11_cross_beamformee,
        fig16_offset_correction,
        fig17_mobility,
    ):
        start = time.time()
        result = module.run(FAST_PROFILE)
        print(f"===== {module.__name__} ({time.time() - start:.0f}s) =====", flush=True)
        print(module.format_report(result), flush=True)
        print(flush=True)


if __name__ == "__main__":
    main()
