"""Fast calibration of the synthetic-channel parameters.

Trains a cheap linear (softmax-regression) probe instead of the full DeepCSI
CNN so that many channel configurations can be screened in minutes.  The
probe under-estimates the absolute accuracy the CNN reaches, but preserves
the orderings (S1 vs S2 vs S3, static vs mobility, stream 0 vs stream 1)
that the reproduction targets.

Usage::

    python scripts/calibrate_channel.py [--correlation-length 0.25]
        [--rician-k 1.5] [--fingerprint-strength 1.0] [--snr-db 28]
        [--soundings 10] [--quick]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.datasets.features import FeatureConfig, FeatureExtractor, normalize_features, apply_normalization, strided_subcarriers
from repro.datasets.generator import DatasetConfig, generate_dataset_d1, generate_dataset_d2
from repro.datasets.splits import (
    D1_SPLITS,
    D2_SPLITS,
    d1_cross_beamformee_split,
    d1_split,
    d2_split,
    d2_subpath_split,
)
from repro.phy.ofdm import sounding_layout


def linear_probe_accuracy(train, test, feature_config, epochs=250, lr=0.05, seed=0):
    """Accuracy of a softmax-regression probe trained on flattened features."""
    extractor = FeatureExtractor(feature_config)
    x_train, y_train = extractor.transform_samples(train)
    x_test, y_test = extractor.transform_samples(test)
    x_train = x_train.reshape(len(x_train), -1)
    x_test = x_test.reshape(len(x_test), -1)
    mean = x_train.mean(axis=0, keepdims=True)
    std = x_train.std(axis=0, keepdims=True) + 1e-8
    x_train = (x_train - mean) / std
    x_test = (x_test - mean) / std

    classes = np.unique(y_train)
    class_index = {c: i for i, c in enumerate(classes)}
    t_train = np.array([class_index[c] for c in y_train])
    num_classes = len(classes)
    rng = np.random.default_rng(seed)
    w = 0.01 * rng.standard_normal((x_train.shape[1], num_classes))
    b = np.zeros(num_classes)
    onehot = np.eye(num_classes)[t_train]
    for _ in range(epochs):
        logits = x_train @ w + b
        logits -= logits.max(axis=1, keepdims=True)
        p = np.exp(logits)
        p /= p.sum(axis=1, keepdims=True)
        grad = (p - onehot) / len(x_train)
        gw = x_train.T @ grad + 1e-4 * w
        gb = grad.sum(axis=0)
        w -= lr * gw
        b -= lr * gb
    pred = np.argmax(x_test @ w + b, axis=1)
    truth = np.array([class_index.get(c, -1) for c in y_test])
    return float(np.mean(pred == truth))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--correlation-length", type=float, default=0.25)
    parser.add_argument("--rician-k", type=float, default=1.5)
    parser.add_argument("--fingerprint-strength", type=float, default=1.0)
    parser.add_argument("--beamformee-strength", type=float, default=1.0)
    parser.add_argument("--snr-db", type=float, default=28.0)
    parser.add_argument("--fading-jitter", type=float, default=0.05)
    parser.add_argument("--num-taps", type=int, default=8)
    parser.add_argument("--soundings", type=int, default=10)
    parser.add_argument("--stride", type=int, default=4)
    parser.add_argument("--channel-model", default="correlated")
    parser.add_argument("--quick", action="store_true", help="skip dataset D2")
    args = parser.parse_args()

    config = DatasetConfig(
        num_modules=10,
        soundings_per_trace=args.soundings,
        snr_db=args.snr_db,
        fingerprint_strength=args.fingerprint_strength,
        beamformee_impairment_strength=args.beamformee_strength,
        fading_jitter=args.fading_jitter,
        channel_model=args.channel_model,
        correlation_length_m=args.correlation_length,
        rician_k=args.rician_k,
        num_taps=args.num_taps,
    )
    layout = sounding_layout(80)
    positions = strided_subcarriers(layout.num_subcarriers, args.stride)
    stream0 = FeatureConfig(stream_indices=(0,), subcarrier_positions=positions)
    stream1 = FeatureConfig(stream_indices=(1,), subcarrier_positions=positions)

    t0 = time.time()
    d1 = generate_dataset_d1(config)
    print(f"D1 generated in {time.time() - t0:.1f}s "
          f"(corr={args.correlation_length} K={args.rician_k} "
          f"fp={args.fingerprint_strength} snr={args.snr_db})")

    rows = []
    for name in ("S1", "S2", "S3"):
        train, test = d1_split(d1, D1_SPLITS[name], beamformee_id=1)
        rows.append((f"D1 {name} bf1 stream0", linear_probe_accuracy(train, test, stream0)))
    for name in ("S1", "S2", "S3"):
        train, test = d1_split(d1, D1_SPLITS[name], beamformee_id=1)
        rows.append((f"D1 {name} bf1 stream1", linear_probe_accuracy(train, test, stream1)))
    train, test = d1_cross_beamformee_split(d1, D1_SPLITS["S1"], 1, 2)
    rows.append(("D1 S1 cross bf1->bf2", linear_probe_accuracy(train, test, stream0)))

    if not args.quick:
        t0 = time.time()
        d2 = generate_dataset_d2(config)
        print(f"D2 generated in {time.time() - t0:.1f}s")
        for name in ("S4", "S5", "S6"):
            train, test = d2_split(d2, D2_SPLITS[name], beamformee_id=1)
            rows.append((f"D2 {name} bf1 stream0", linear_probe_accuracy(train, test, stream0)))
        train, test = d2_subpath_split(d2, beamformee_id=1)
        rows.append(("D2 subpath bf1 stream0", linear_probe_accuracy(train, test, stream0)))

    print()
    print(f"{'configuration':<28s} {'probe acc':>10s}   paper (CNN)")
    paper = {
        "D1 S1 bf1 stream0": 98.0, "D1 S2 bf1 stream0": 75.4, "D1 S3 bf1 stream0": 43.0,
        "D1 S1 bf1 stream1": 97.0, "D1 S2 bf1 stream1": 13.3, "D1 S3 bf1 stream1": 5.6,
        "D1 S1 cross bf1->bf2": 25.9,
        "D2 S4 bf1 stream0": 82.6, "D2 S5 bf1 stream0": 20.5, "D2 S6 bf1 stream0": 88.1,
        "D2 subpath bf1 stream0": 41.2,
    }
    for label, acc in rows:
        ref = paper.get(label)
        ref_text = f"{ref:.1f}%" if ref is not None else ""
        print(f"{label:<28s} {100 * acc:9.2f}%   {ref_text}")


if __name__ == "__main__":
    main()
